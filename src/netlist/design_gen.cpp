#include "netlist/design_gen.hpp"

#include <algorithm>
#include <cmath>

namespace tmm {

namespace {

struct SourceRec {
  PinId pin;
  NetId net;
};

/// Collect combinational (non-clock-buffer) cell ids usable in clouds.
std::vector<CellId> comb_cells(const Library& lib) {
  std::vector<CellId> out;
  for (CellId c = 0; c < lib.num_cells(); ++c) {
    const auto& cell = lib.cell(c);
    if (cell.is_sequential) continue;
    if (cell.name.rfind("CLKBUF", 0) == 0) continue;
    out.push_back(c);
  }
  return out;
}

}  // namespace

Design generate_design(const Library& lib, const DesignGenConfig& cfg) {
  Rng rng(cfg.seed);
  Design d(cfg.name, &lib);

  const CellId dff = lib.cell_id("DFF_X1");
  const CellId clkbuf = lib.cell_id("CLKBUF_X2");
  const std::vector<CellId> combs = comb_cells(lib);

  auto wire_res = [&]() {
    return std::max(0.01, rng.normal(cfg.wire_res_mean_kohm,
                                     cfg.wire_res_mean_kohm * 0.3));
  };

  // ---- ports --------------------------------------------------------
  d.add_port("clk", TopPortDir::kPrimaryInput, /*is_clock=*/true);
  std::vector<PinId> data_pis;
  for (std::size_t i = 0; i < cfg.num_data_inputs; ++i) {
    const auto idx =
        d.add_port("in" + std::to_string(i), TopPortDir::kPrimaryInput);
    data_pis.push_back(d.port(idx).pin);
  }
  std::vector<PinId> po_pins;
  for (std::size_t i = 0; i < cfg.num_outputs; ++i) {
    const auto idx =
        d.add_port("out" + std::to_string(i), TopPortDir::kPrimaryOutput);
    po_pins.push_back(d.port(idx).pin);
  }

  // ---- flip-flops -----------------------------------------------------
  const auto& dff_cell = lib.cell(dff);
  const auto d_port = dff_cell.port_index("D");
  const auto ck_port = dff_cell.port_index("CK");
  const auto q_port = dff_cell.port_index("Q");
  std::vector<GateId> flops;
  flops.reserve(cfg.num_flops);
  for (std::size_t i = 0; i < cfg.num_flops; ++i)
    flops.push_back(d.add_gate("ff" + std::to_string(i), dff));

  // ---- clock tree -----------------------------------------------------
  // F-ary tree of clock buffers from the clk port down to leaf nets;
  // flops attach to leaves round-robin (several per leaf). The interior
  // multi-fanout buffer outputs are exactly the common points CPPR uses.
  {
    const NetId clk_net = d.add_net("clk_net", d.clock_root());
    const std::size_t leaves_needed =
        std::max<std::size_t>(1, (cfg.num_flops + 3) / 4);
    std::vector<NetId> frontier{clk_net};
    std::size_t buf_idx = 0;
    while (frontier.size() < leaves_needed) {
      std::vector<NetId> next;
      next.reserve(frontier.size() * cfg.clock_fanout);
      for (NetId parent : frontier) {
        for (std::size_t k = 0; k < cfg.clock_fanout; ++k) {
          const GateId b =
              d.add_gate("ckbuf" + std::to_string(buf_idx++), clkbuf);
          const auto& bcell = lib.cell(clkbuf);
          const PinId bin = d.gate(b).pins[bcell.port_index("A")];
          const PinId bout = d.gate(b).pins[bcell.port_index("Y")];
          d.connect_sink(parent, bin, wire_res());
          next.push_back(d.add_net("cknet" + std::to_string(buf_idx), bout));
          if (next.size() >= leaves_needed &&
              frontier.size() * cfg.clock_fanout > leaves_needed * 2)
            break;
        }
      }
      frontier = std::move(next);
    }
    for (std::size_t i = 0; i < flops.size(); ++i) {
      const PinId ck = d.gate(flops[i]).pins[ck_port];
      d.connect_sink(frontier[i % frontier.size()], ck, wire_res());
    }
  }

  // ---- combinational clouds -------------------------------------------
  // Real hierarchical designs have a register-bounded core that interface-
  // logic models drop; the generator mirrors that with three clouds:
  //   A  input interface : data PIs (+ some flop outputs) -> input-rank
  //                        flop D pins
  //   B  core            : flop outputs -> flop D pins (reg-to-reg only)
  //   C  output interface: flop outputs + cloud-A outputs -> POs
  std::vector<SourceRec> q_sources;
  for (GateId f : flops) {
    const PinId q = d.gate(f).pins[q_port];
    q_sources.push_back({q, d.add_net("n_" + d.gate(f).name + "_q", q)});
  }

  std::size_t gidx = 0;
  auto fanout_ok = [&](const SourceRec& s) {
    return d.net(s.net).sinks.size() < cfg.max_fanout;
  };
  // Pick from `primary[lo..]`; with probability `alt_prob` (and a
  // non-empty alt pool) pick from `alt` instead. Retries to respect the
  // soft fanout cap.
  auto pick = [&](const std::vector<SourceRec>& primary, std::size_t lo,
                  const std::vector<SourceRec>& alt,
                  double alt_prob) -> const SourceRec& {
    for (int attempt = 0; attempt < 6; ++attempt) {
      const bool use_alt = !alt.empty() && rng.chance(alt_prob);
      const SourceRec& cand =
          use_alt ? alt[rng.below(alt.size())]
                  : primary[lo + rng.below(primary.size() - lo)];
      if (fanout_ok(cand) || attempt == 5) return cand;
    }
    return primary.back();
  };

  // Build one levelized cloud; returns its output source list.
  auto build_cloud = [&](std::vector<SourceRec> level0,
                         const std::vector<SourceRec>& alt, double alt_prob,
                         std::size_t levels, std::size_t per_level) {
    std::vector<SourceRec> sources = std::move(level0);
    std::vector<std::size_t> level_start{0};
    for (std::size_t lvl = 1; lvl <= levels; ++lvl) {
      const std::size_t first_new = sources.size();
      const std::size_t back =
          lvl > cfg.locality ? level_start[lvl - cfg.locality] : 0;
      for (std::size_t gi = 0; gi < per_level; ++gi) {
        const CellId cid = combs[rng.below(combs.size())];
        const auto& cell = lib.cell(cid);
        std::string gname = "g";
        gname += std::to_string(gidx++);
        const GateId gate = d.add_gate(gname, cid);
        for (std::uint32_t pi = 0; pi < cell.ports.size(); ++pi) {
          if (cell.ports[pi].dir != PortDir::kInput) continue;
          // Restrict picks to recent levels of this cloud, or alt pool.
          const SourceRec& src = pick(sources, back, alt, alt_prob);
          d.connect_sink(src.net, d.gate(gate).pins[pi], wire_res());
        }
        for (std::uint32_t pi = 0; pi < cell.ports.size(); ++pi) {
          if (cell.ports[pi].dir != PortDir::kOutput) continue;
          const PinId out = d.gate(gate).pins[pi];
          std::string nname = "n_g";
          nname += std::to_string(gidx);
          sources.push_back({out, d.add_net(nname, out)});
        }
      }
      level_start.push_back(first_new);
    }
    // Only the deeper half of the cloud feeds endpoints.
    const std::size_t deep =
        level_start[std::max<std::size_t>(1, levels / 2)];
    return std::vector<SourceRec>(sources.begin() +
                                      static_cast<std::ptrdiff_t>(deep),
                                  sources.end());
  };

  const std::size_t iface_levels = std::max<std::size_t>(2, cfg.levels / 2);
  const std::size_t core_gates = static_cast<std::size_t>(
      static_cast<double>(cfg.gates_per_level * cfg.levels) *
      cfg.core_fraction);
  const std::size_t iface_gates =
      std::max<std::size_t>(8, cfg.gates_per_level * cfg.levels - core_gates);

  std::vector<SourceRec> pi_sources;
  for (PinId p : data_pis)
    pi_sources.push_back({p, d.add_net("n_" + d.pin_name(p), p)});

  const auto cloud_a =
      build_cloud(pi_sources, q_sources, /*alt_prob=*/0.10, iface_levels,
                  std::max<std::size_t>(2, iface_gates / 2 / iface_levels));
  const auto cloud_b = build_cloud(q_sources, {}, 0.0, cfg.levels,
                                   std::max<std::size_t>(2, core_gates /
                                                                cfg.levels));
  // Cloud C mixes flop outputs with cloud-A outputs (PI->PO paths).
  const auto cloud_c =
      build_cloud(q_sources, cloud_a, /*alt_prob=*/0.35, iface_levels,
                  std::max<std::size_t>(2, iface_gates / 2 / iface_levels));

  // ---- endpoint hookup -------------------------------------------------
  // A slice of the flops forms the input rank (D from cloud A); the rest
  // are core flops (D from cloud B).
  const std::size_t input_rank =
      std::max<std::size_t>(1, flops.size() * 3 / 10);
  for (std::size_t i = 0; i < flops.size(); ++i) {
    const auto& pool = i < input_rank ? cloud_a : cloud_b;
    const SourceRec& src = pick(pool, 0, {}, 0.0);
    d.connect_sink(src.net, d.gate(flops[i]).pins[d_port], wire_res());
  }
  for (PinId po : po_pins) {
    const SourceRec& src = pick(cloud_c, 0, {}, 0.0);
    d.connect_sink(src.net, po, wire_res());
  }

  // ---- wire capacitances ------------------------------------------------
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const double fanout = static_cast<double>(d.net(n).sinks.size());
    const double cap = std::max(
        0.05, rng.normal(cfg.wire_cap_mean_ff, cfg.wire_cap_mean_ff * 0.35) *
                  (1.0 + 0.15 * fanout));
    d.set_wire_cap(n, cap);
  }

  d.validate();
  return d;
}

namespace {

DesignGenConfig config_for_pins(const std::string& name,
                                std::size_t target_pins, std::uint64_t seed) {
  DesignGenConfig cfg;
  cfg.name = name;
  cfg.seed = seed;
  // A combinational gate contributes ~3.4 pins, a flop 3, a clock buffer
  // 2; solve approximately for the per-level gate count.
  const auto budget = static_cast<double>(target_pins) / 3.3;
  const auto flops =
      std::max<std::size_t>(8, static_cast<std::size_t>(budget * 0.10));
  cfg.num_flops = flops;
  cfg.levels = std::clamp<std::size_t>(
      static_cast<std::size_t>(5.0 + std::log2(budget) * 0.6), 6, 16);
  const auto comb = static_cast<std::size_t>(
      std::max(32.0, budget - static_cast<double>(flops) * 1.6));
  cfg.gates_per_level = std::max<std::size_t>(4, comb / cfg.levels);
  cfg.num_data_inputs =
      std::clamp<std::size_t>(static_cast<std::size_t>(budget / 60.0), 8, 256);
  cfg.num_outputs = cfg.num_data_inputs;
  return cfg;
}

}  // namespace

std::vector<SuiteEntry> tau_testing_suite(const Library& /*lib*/,
                                          std::size_t scale) {
  struct Row {
    const char* name;
    std::size_t pins;
    std::uint64_t seed;
  };
  // Pin counts are the Table 2 values; we generate at pins/scale.
  const Row rows[] = {
      {"mgc_edit_dist_iccad_eval", 581319, 1601},
      {"vga_lcd_iccad_eval", 768050, 1602},
      {"leon3mp_iccad_eval", 4167632, 1603},
      {"netcard_iccad_eval", 4458141, 1604},
      {"leon2_iccad_eval", 5179094, 1605},
      {"mgc_edit_dist_iccad", 450354, 1701},
      {"vga_lcd_iccad", 679258, 1702},
      {"leon3mp_iccad", 3376832, 1703},
      {"netcard_iccad", 3999174, 1704},
      {"leon2_iccad", 4328255, 1705},
      {"mgc_matrix_mult_iccad", 492568, 1706},
  };
  std::vector<SuiteEntry> out;
  for (const auto& r : rows) {
    SuiteEntry e;
    e.name = r.name;
    e.tau_pins = r.pins;
    e.cfg = config_for_pins(r.name, std::max<std::size_t>(600, r.pins / scale),
                            r.seed);
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<SuiteEntry> training_suite(const Library& /*lib*/,
                                       std::size_t scale) {
  struct Row {
    const char* name;
    std::size_t pins;
    std::uint64_t seed;
  };
  const Row rows[] = {
      {"fft_ispd", 40000, 2001},     {"systemcaes", 16000, 2002},
      {"aes_core", 30000, 2003},     {"des_perf", 55000, 2004},
      {"pci_bridge32", 35000, 2005}, {"usb_funct", 24000, 2006},
  };
  std::vector<SuiteEntry> out;
  for (const auto& r : rows) {
    SuiteEntry e;
    e.name = r.name;
    e.tau_pins = r.pins;
    e.cfg = config_for_pins(r.name, std::max<std::size_t>(400, r.pins / scale),
                            r.seed);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace tmm
