#pragma once
// Gate-level netlist with net parasitics — the "circuit design" input of
// the problem formulation (Section 2 of the paper): gates instantiating
// library cells, nets with a driver and sinks, lumped wire capacitance
// and per-sink Elmore resistance, and top-level ports.

#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/library.hpp"
#include "util/types.hpp"

namespace tmm {

/// A pin is either a gate terminal (gate != kInvalidId) or a top-level
/// port (gate == kInvalidId, port indexes Design::ports_).
struct Pin {
  GateId gate = kInvalidId;
  std::uint32_t port = 0;  ///< cell-port index, or top-level port index
  NetId net = kInvalidId;
  /// True if this pin drives its net (gate output or primary input).
  bool is_driver = false;
};

struct Gate {
  std::string name;
  CellId cell = kInvalidId;
  /// Pin ids parallel to the cell's port list.
  std::vector<PinId> pins;
};

/// Net parasitics: a lumped wire capacitance seen by the driver plus a
/// per-sink Elmore resistance (driver-to-sink), so that the wire delay to
/// sink k is res[k] * (cap of sink k) and the driver load is
/// wire_cap + sum(sink pin caps).
struct Net {
  std::string name;
  PinId driver = kInvalidId;
  std::vector<PinId> sinks;
  double wire_cap_ff = 0.0;
  std::vector<double> sink_res_kohm;  ///< parallel to sinks
};

enum class TopPortDir : std::uint8_t { kPrimaryInput, kPrimaryOutput };

struct TopPort {
  std::string name;
  TopPortDir dir = TopPortDir::kPrimaryInput;
  PinId pin = kInvalidId;
  bool is_clock = false;
};

class Design {
 public:
  Design(std::string name, const Library* lib)
      : name_(std::move(name)), lib_(lib) {}

  const std::string& name() const noexcept { return name_; }
  const Library& library() const noexcept { return *lib_; }

  // --- construction -------------------------------------------------
  /// Add a top-level port; creates its pin. Returns the port index.
  std::uint32_t add_port(const std::string& port_name, TopPortDir dir,
                         bool is_clock = false);
  /// Add a gate instantiating `cell`; creates one pin per cell port.
  GateId add_gate(const std::string& gate_name, CellId cell);
  /// Create a net driven by `driver_pin`. Returns the net id.
  NetId add_net(const std::string& net_name, PinId driver_pin);
  /// Attach a sink pin to a net with the given wire resistance.
  void connect_sink(NetId net, PinId sink_pin, double res_kohm = 0.0);
  /// Set the lumped wire capacitance of a net.
  void set_wire_cap(NetId net, double cap_ff);

  // --- access --------------------------------------------------------
  std::size_t num_pins() const noexcept { return pins_.size(); }
  std::size_t num_gates() const noexcept { return gates_.size(); }
  std::size_t num_nets() const noexcept { return nets_.size(); }
  std::size_t num_ports() const noexcept { return ports_.size(); }

  const Pin& pin(PinId id) const { return pins_.at(id); }
  const Gate& gate(GateId id) const { return gates_.at(id); }
  const Net& net(NetId id) const { return nets_.at(id); }
  const TopPort& port(std::uint32_t idx) const { return ports_.at(idx); }

  const std::vector<Pin>& pins() const noexcept { return pins_; }
  const std::vector<Gate>& gates() const noexcept { return gates_; }
  const std::vector<Net>& nets() const noexcept { return nets_; }
  const std::vector<TopPort>& ports() const noexcept { return ports_; }

  /// Primary input / output pin lists (clock port included in PIs).
  const std::vector<PinId>& primary_inputs() const noexcept { return pis_; }
  const std::vector<PinId>& primary_outputs() const noexcept { return pos_; }

  bool is_primary_input(PinId p) const {
    const auto& pin = pins_.at(p);
    return pin.gate == kInvalidId &&
           ports_[pin.port].dir == TopPortDir::kPrimaryInput;
  }
  bool is_primary_output(PinId p) const {
    const auto& pin = pins_.at(p);
    return pin.gate == kInvalidId &&
           ports_[pin.port].dir == TopPortDir::kPrimaryOutput;
  }
  bool is_port_pin(PinId p) const { return pins_.at(p).gate == kInvalidId; }

  /// The cell port backing a gate pin (requires pin.gate valid).
  const CellPort& cell_port(PinId p) const {
    const auto& pin = pins_.at(p);
    return lib_->cell(gates_[pin.gate].cell).ports[pin.port];
  }

  /// Human-readable pin name: "gate/port" or the top-level port name.
  std::string pin_name(PinId p) const;

  /// Input pin capacitance in fF (0 for drivers and PO port pins
  /// without explicit load; PO loads come from boundary constraints).
  double pin_cap_ff(PinId p) const;

  /// Total capacitive load a driver pin sees on its net (wire + sinks),
  /// excluding any boundary PO load (added by the timer).
  double net_load_ff(NetId n) const;

  /// Clock source port pin, or kInvalidId if the design has none.
  PinId clock_root() const noexcept { return clock_root_; }

  /// Basic sanity checks (every pin on a net, every net driven, ...).
  /// Throws std::runtime_error on violation.
  void validate() const;

 private:
  std::string name_;
  const Library* lib_;
  std::vector<Pin> pins_;
  std::vector<Gate> gates_;
  std::vector<Net> nets_;
  std::vector<TopPort> ports_;
  std::vector<PinId> pis_;
  std::vector<PinId> pos_;
  PinId clock_root_ = kInvalidId;
};

/// Design statistics for Table 2.
struct DesignStats {
  std::size_t pins = 0;
  std::size_t cells = 0;
  std::size_t nets = 0;
};

inline DesignStats design_stats(const Design& d) {
  return {d.num_pins(), d.num_gates(), d.num_nets()};
}

}  // namespace tmm
