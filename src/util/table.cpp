#include "util/table.hpp"

#include <cstdio>
#include <stdexcept>

namespace tmm {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : cols_(header.size()) {
  if (cols_ == 0) throw std::invalid_argument("AsciiTable: empty header");
  rows_.push_back(std::move(header));
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != cols_)
    throw std::invalid_argument("AsciiTable: row arity mismatch");
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> width(cols_, 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::string sep = "+";
  for (std::size_t c = 0; c < cols_; ++c) {
    sep.append(width[c] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep;
  bool first = true;
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += sep;
      continue;
    }
    out += '|';
    for (std::size_t c = 0; c < cols_; ++c) {
      out += ' ';
      out += row[c];
      out.append(width[c] - row[c].size() + 1, ' ');
      out += '|';
    }
    out += '\n';
    if (first) {
      out += sep;
      first = false;
    }
  }
  out += sep;
  return out;
}

std::string AsciiTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace tmm
