#include "util/stats.hpp"

#include <limits>

namespace tmm {

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[128];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    std::snprintf(buf, sizeof(buf), "[%10.4g, %10.4g) %8zu |", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

void standardize(std::span<double> values) {
  RunningStats rs;
  for (double v : values) rs.add(v);
  const double sd = rs.stddev_population();
  if (sd <= 0.0) {
    for (double& v : values) v = 0.0;
    return;
  }
  const double mean = rs.mean();
  for (double& v : values) v = (v - mean) / sd;
}

double percentile(std::span<const double> values, double pct) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (pct <= 0.0) return sorted.front();
  if (pct >= 100.0) return sorted.back();
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace tmm
