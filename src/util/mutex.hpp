#pragma once
// Capability-annotated mutex wrapper (docs/ANALYSIS.md, "Concurrency
// invariants") — the one lock type the concurrent subsystems use.
//
// util::Mutex wraps std::mutex with two static-analysis hooks:
//   1. Clang thread-safety capability annotations, so every
//      TMM_GUARDED_BY field access is machine-checked under
//      -Wthread-safety (thread_annotations.hpp);
//   2. lock-order tracking in Debug/sanitizer builds, so every
//      acquisition feeds the deadlock-cycle analyzer
//      (util/lockorder.hpp). In Release the tracking calls are
//      compiled out and lock()/unlock() are exactly
//      std::mutex::lock()/unlock().
//
// Every Mutex names its lock class at construction; instances of the
// same class (e.g. all cache shards) share one node in the lock-order
// graph. Locks are taken through the scoped types below — never via
// bare lock()/unlock() calls at use sites:
//
//   util::MutexLock lock(mu_);           // lock_guard shape
//   util::MutexUniqueLock lock(mu_);     // condition_variable shape
//   cv_.wait(lock.native(), ...);
//
// Caveat: during a condition-variable wait the underlying mutex is
// released and re-acquired by the native handle, which the lock-order
// stack does not see — a waiting thread therefore must not be modeled
// as holding other locks across the wait (it never is in this
// codebase; waits only ever hold the single queue mutex).

#include <mutex>

#include "util/lockorder.hpp"
#include "util/thread_annotations.hpp"

namespace tmm::util {

class TMM_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const lockorder::LockClass& cls) noexcept : cls_(cls) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if TMM_LOCK_ORDER_ENABLED
  void lock(const std::source_location& loc =
                std::source_location::current()) TMM_ACQUIRE() {
    mu_.lock();
    lockorder::on_acquire(cls_, loc);
  }
  void unlock() TMM_RELEASE() {
    lockorder::on_release(cls_);
    mu_.unlock();
  }
#else
  void lock() TMM_ACQUIRE() { mu_.lock(); }
  void unlock() TMM_RELEASE() { mu_.unlock(); }
#endif

  /// The wrapped std::mutex, for std::condition_variable interop via
  /// MutexUniqueLock::native(). Bypasses annotation and order tracking;
  /// do not lock it directly.
  std::mutex& native_handle() noexcept { return mu_; }

  const lockorder::LockClass& lock_class() const noexcept { return cls_; }

 private:
  std::mutex mu_;
  const lockorder::LockClass& cls_;
};

/// std::lock_guard over a util::Mutex, visible to the thread-safety
/// analysis as a scoped capability.
class TMM_SCOPED_CAPABILITY MutexLock {
 public:
#if TMM_LOCK_ORDER_ENABLED
  explicit MutexLock(Mutex& mu, const std::source_location& loc =
                                    std::source_location::current())
      TMM_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(loc);
  }
#else
  explicit MutexLock(Mutex& mu) TMM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
#endif
  ~MutexLock() TMM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over a util::Mutex, for condition-variable waits.
/// The native std::unique_lock is exposed for std::condition_variable;
/// ownership stays with this scope (no release()/swap surface).
class TMM_SCOPED_CAPABILITY MutexUniqueLock {
 public:
#if TMM_LOCK_ORDER_ENABLED
  explicit MutexUniqueLock(Mutex& mu, const std::source_location& loc =
                                          std::source_location::current())
      TMM_ACQUIRE(mu)
      : mu_(mu), lk_(mu.native_handle()) {
    lockorder::on_acquire(mu_.lock_class(), loc);
  }
  ~MutexUniqueLock() TMM_RELEASE() {
    lockorder::on_release(mu_.lock_class());
  }
#else
  explicit MutexUniqueLock(Mutex& mu) TMM_ACQUIRE(mu)
      : mu_(mu), lk_(mu.native_handle()) {}
  ~MutexUniqueLock() TMM_RELEASE() {}
#endif

  MutexUniqueLock(const MutexUniqueLock&) = delete;
  MutexUniqueLock& operator=(const MutexUniqueLock&) = delete;

  /// For std::condition_variable::wait only.
  std::unique_lock<std::mutex>& native() noexcept { return lk_; }

 private:
  Mutex& mu_;
  std::unique_lock<std::mutex> lk_;
};

}  // namespace tmm::util
