#pragma once
// Reusable worker pool for data-parallel loops (docs/PERFORMANCE.md,
// "Parallel levelized propagation").
//
// TaskPool runs one job at a time: parallel_for(n, grain, fn) splits
// [0, n) into fixed-size chunks, wakes the parked workers, and the
// *calling thread participates* in draining the chunk queue, so a pool
// sized for k-way parallelism carries k-1 worker threads. Chunks are
// claimed with a single atomic fetch_add; there is no per-chunk
// locking. parallel_for returns only after every chunk has executed
// (the between-levels barrier of the levelized STA passes), rethrowing
// the first exception any chunk threw.
//
// Jobs must be write-disjoint across chunks: fn(begin, end) may touch
// shared read-only state freely but must only write state owned by
// indices in [begin, end). The STA relaxation kernels satisfy this by
// construction (each node writes only its own corner lanes).
//
// Tiny loops (n <= grain), pools with no workers, and re-entrant calls
// (fn itself calling parallel_for, or a parallel_for issued from a
// worker thread) all run inline on the caller — same results, no
// deadlock surface.
//
// Lock classes (docs/ANALYSIS.md, "Concurrency invariants"):
//   util.taskpool.job    held by the caller for the whole job — it
//                        serializes concurrent parallel_for calls from
//                        different threads onto the one chunk queue.
//   util.taskpool.queue  the worker wakeup mutex (condition-variable
//                        shape); acquired under util.taskpool.job by
//                        the caller and alone by workers.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace tmm::util {

class TaskPool {
 public:
  /// A pool that offers `threads`-way parallelism: `threads - 1` parked
  /// worker threads plus the calling thread. threads <= 1 starts no
  /// workers (every parallel_for runs inline).
  explicit TaskPool(std::size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Maximum parallelism this pool can offer (workers + caller), >= 1.
  std::size_t max_parallelism() const noexcept { return workers_.size() + 1; }

  /// Run fn(begin, end) over disjoint chunks covering [0, n), each at
  /// most `grain` wide, with at most `max_threads` threads touching the
  /// job (capped by max_parallelism; 0 means "use the whole pool").
  /// Blocks until every chunk has run; rethrows the first exception a
  /// chunk threw (remaining chunks are abandoned, already-claimed ones
  /// finish).
  template <typename Fn>
  void parallel_for(std::size_t n, std::size_t grain, std::size_t max_threads,
                    Fn&& fn) {
    static_assert(std::is_invocable_v<Fn&, std::size_t, std::size_t>,
                  "fn must be callable as fn(begin, end)");
    run_job(n, grain, max_threads,
            [](void* ctx, std::size_t begin, std::size_t end) {
              (*static_cast<std::remove_reference_t<Fn>*>(ctx))(begin, end);
            },
            &fn);
  }

  /// The process-wide pool, sized to default_threads() on first use and
  /// leaked (workers park in a condition-variable wait; never joined at
  /// exit, matching the obs registry idiom).
  static TaskPool& shared();

  /// Thread count used when a caller asks for "auto" (0): TMM_THREADS
  /// when set and valid, else std::thread::hardware_concurrency(),
  /// never less than 1.
  static std::size_t default_threads();

  /// Parse TMM_THREADS. Returns 0 when unset or malformed; when
  /// `error` is non-null it receives a diagnostic for malformed values
  /// ("" when unset or valid) so the CLI can reject bad environments
  /// up front (exit 2) while library callers just fall back.
  static std::size_t env_threads(std::string* error = nullptr);

 private:
  using ChunkFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

  void run_job(std::size_t n, std::size_t grain, std::size_t max_threads,
               ChunkFn fn, void* ctx);
  void worker_main();
  /// Claim and execute chunks until the queue is exhausted.
  void drain(ChunkFn fn, void* ctx, std::size_t n, std::size_t grain,
             std::size_t chunks);

  // Serializes whole jobs: held by the caller across run_job so two
  // threads cannot interleave jobs on the one chunk queue.
  Mutex job_mu_;

  // Wakeup mutex for the parked workers (condition-variable shape).
  // Job parameters are published under it before the epoch bump and
  // read back under it by waking workers.
  Mutex mu_;
  std::condition_variable cv_;       // workers wait: epoch bump or stop
  std::condition_variable done_cv_;  // caller waits: all chunks executed
  std::uint64_t epoch_ TMM_GUARDED_BY(mu_) = 0;
  bool stop_ TMM_GUARDED_BY(mu_) = false;
  ChunkFn job_fn_ TMM_GUARDED_BY(mu_) = nullptr;
  void* job_ctx_ TMM_GUARDED_BY(mu_) = nullptr;
  std::size_t job_n_ TMM_GUARDED_BY(mu_) = 0;
  std::size_t job_grain_ TMM_GUARDED_BY(mu_) = 0;
  std::size_t job_chunks_ TMM_GUARDED_BY(mu_) = 0;
  std::size_t job_worker_budget_ TMM_GUARDED_BY(mu_) = 0;
  // Tickets handed to workers for the current job (caps participation
  // at the job's thread budget) and workers currently inside drain().
  // The job counters below are only reset once active_workers_ == 0,
  // so a straggler from the previous epoch can never claim chunks of
  // a new job.
  std::size_t job_tickets_ TMM_GUARDED_BY(mu_) = 0;
  std::size_t active_workers_ TMM_GUARDED_BY(mu_) = 0;
  std::exception_ptr job_error_ TMM_GUARDED_BY(mu_);

  // Next chunk index to claim / chunks finished. Relaxed fetch_add is
  // enough for claiming (chunk payloads are published by the mu_
  // critical section that started the job); completion uses acq_rel so
  // the caller's post-barrier reads happen-after every chunk's writes.
  // abort_ is set on the first exception; remaining chunks are claimed
  // but skipped so the completion count still reaches job_chunks_.
  std::atomic<std::size_t> next_chunk_{0};
  std::atomic<std::size_t> done_chunks_{0};
  std::atomic<bool> abort_{false};

  std::vector<std::thread> workers_;
};

}  // namespace tmm::util
