#include "util/atomic_io.hpp"

#include "util/errno_string.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace tmm::util {

namespace {

fault::Status io_failure(const std::string& what, const std::string& path) {
  return fault::Status::failure(
      fault::ErrorCode::kIo,
      what + " '" + path + "': " + errno_string(errno));
}

}  // namespace

fault::Status atomic_write_file(const std::string& path,
                                std::string_view data) {
  fault::inject("util.atomic_write");
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return io_failure("cannot create", tmp);

  const char* p = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      const fault::Status s = io_failure("cannot write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  // fsync before rename: without it a crash shortly after the rename
  // can expose an empty file at the final path on some filesystems.
  if (::fsync(fd) != 0) {
    const fault::Status s = io_failure("cannot fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    const fault::Status s = io_failure("cannot close", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  try {
    fault::inject("util.atomic_rename");
  } catch (...) {
    // An injected throw models a failure between write and rename: the
    // contract (no partial file, no debris) must hold on that path too.
    ::unlink(tmp.c_str());
    throw;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const fault::Status s = io_failure("cannot rename into", path);
    ::unlink(tmp.c_str());
    return s;
  }
  return {};
}

}  // namespace tmm::util
