#pragma once
// Minimal leveled logger. Off-by-default debug level keeps benchmark
// output clean; everything goes to stderr so bench tables on stdout
// stay machine-parseable. The startup threshold can be set with the
// TMM_LOG environment variable (debug/info/warn/error/off); each line
// carries a monotonic elapsed-time prefix and a dense thread id:
//   [tmm INFO  +    1.234s t1] message

#include <cstdio>
#include <string>
#include <utility>

namespace tmm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Initialized
/// from TMM_LOG at startup (default warn).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parse a level name ("debug", "info", "warn", "error", "off") into
/// `*out`; returns false (and leaves `*out` untouched) otherwise.
bool parse_log_level(const char* text, LogLevel* out) noexcept;

namespace detail {
void log_line(LogLevel level, const std::string& msg);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  if (n <= 0) return fmt;
  std::string s(static_cast<std::size_t>(n), '\0');
  std::snprintf(s.data(), s.size() + 1, fmt, args...);
  return s;
}
inline std::string format(const char* fmt) { return fmt; }
}  // namespace detail

template <typename... Args>
void log_debug(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    detail::log_line(LogLevel::kDebug,
                     detail::format(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    detail::log_line(LogLevel::kInfo,
                     detail::format(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    detail::log_line(LogLevel::kWarn,
                     detail::format(fmt, std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(const char* fmt, Args&&... args) {
  if (log_level() <= LogLevel::kError)
    detail::log_line(LogLevel::kError,
                     detail::format(fmt, std::forward<Args>(args)...));
}

}  // namespace tmm
