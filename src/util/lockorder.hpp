#pragma once
// Debug-build lock-order analyzer (docs/ANALYSIS.md, "Concurrency
// invariants").
//
// Every util::Mutex belongs to a named *lock class* ("serve.cache.shard",
// "obs.trace.registry", ...). When tracking is compiled in
// (TMM_LOCK_ORDER_ENABLED=1: Debug and sanitizer builds by default,
// -DTMM_LOCKORDER=ON anywhere else), each acquisition is pushed on a
// per-thread stack and every (held -> acquired) class pair becomes an
// edge in a global lock-acquisition graph. An edge that closes a cycle
// — including the length-1 cycle of re-acquiring a class this thread
// already holds — is a potential deadlock: it is recorded with the
// source locations of both acquisitions and reported deterministically
// (once per distinct cycle, in discovery order) on stderr. Nothing
// throws and nothing aborts: the analyzer is a
// detector, the gates (tests/test_lockorder.cpp, `tmm lint
// --concurrency`, tools/check.sh lockorder) turn detections into
// failures.
//
// In Release builds the tracking calls are compiled out of
// util::Mutex entirely (zero cost); lock-class *registration* is always
// compiled in — it happens once per class and is what lets a Release
// `tmm lint --concurrency` still dump the hierarchy.
//
// The analyzer's own state is guarded by a plain std::mutex (never a
// util::Mutex — the tracker must not track itself).

#include <cstdint>
#include <ostream>
#include <source_location>
#include <string>
#include <vector>

#ifndef TMM_LOCK_ORDER_ENABLED
#define TMM_LOCK_ORDER_ENABLED 0
#endif

namespace tmm::util::lockorder {

/// A named equivalence class of mutexes ("serve.cache.shard" covers
/// every shard instance). Construction registers the name in a leaked
/// global registry; two LockClass objects with the same name share one
/// id, so classes can be declared wherever is convenient (namespace
/// scope, function-local static) without double counting.
class LockClass {
 public:
  explicit LockClass(const char* name);

  std::uint32_t id() const noexcept { return id_; }
  const std::string& name() const;

 private:
  std::uint32_t id_;
};

/// Record that the calling thread acquired / released a mutex of class
/// `cls`. Called by util::Mutex when tracking is compiled in; exposed
/// so tests and the lint self-audit can drive the analyzer directly in
/// any build type.
void on_acquire(const LockClass& cls,
                const std::source_location& loc =
                    std::source_location::current());
void on_release(const LockClass& cls) noexcept;

/// One observed acquisition ordering: a mutex of class `to` was
/// acquired while one of class `from` was held. Sites are the
/// "file:line" of the first observation of this edge.
struct Edge {
  std::string from;
  std::string to;
  std::string from_site;  ///< where the held (outer) lock was acquired
  std::string to_site;    ///< where the inner lock was acquired
  std::uint64_t count = 0;
};

/// One detected potential deadlock: the new edge closing the cycle
/// (from -> to with both sites, as in Edge) plus the full class path
/// to -> ... -> from already present in the graph.
struct Cycle {
  Edge closing;
  std::vector<std::string> path;  ///< to, ..., from

  /// "fault.plan -> serve.cache.shard (a.cpp:10 holding, b.cpp:20
  /// acquiring) closes cycle: serve.cache.shard -> fault.plan"
  std::string to_string() const;
};

/// Every registered class name, sorted.
std::vector<std::string> registered_classes();
/// Every observed edge, sorted by (from, to) — deterministic.
std::vector<Edge> observed_edges();
/// Every detected cycle, in detection order (deterministic for a
/// deterministic execution). Empty means the observed order is acyclic.
std::vector<Cycle> cycles();
bool cycle_detected() noexcept;

/// Drop every observed edge, cycle, and the calling thread's
/// acquisition stack (test isolation). Registered classes survive.
void reset_observations();

/// True when util::Mutex compiles the tracking calls in.
constexpr bool tracking_compiled_in() noexcept {
  return TMM_LOCK_ORDER_ENABLED != 0;
}

/// Human-readable hierarchy dump: registered classes, observed edges
/// with first-observation sites, and the cycle verdict. Returns true
/// when acyclic (the `tmm lint --concurrency` exit gate).
bool write_report(std::ostream& os);

}  // namespace tmm::util::lockorder
