#pragma once
// Streaming/summary statistics used throughout the sensitivity flow and
// the experiment harnesses (error summaries, SD standardization, histograms).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tmm {

/// Accumulates count/mean/variance/min/max in one pass (Welford).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = n_ + o.n_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ = (mean_ * static_cast<double>(n_) +
             o.mean_ * static_cast<double>(o.n_)) /
            static_cast<double>(n);
    n_ = n;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double sum() const noexcept { return sum_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  /// Population standard deviation (divide by n); used for SD z-scores.
  double stddev_population() const noexcept {
    return n_ ? std::sqrt(m2_ / static_cast<double>(n_)) : 0.0;
  }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); values outside clamp to end bins.
/// Used to regenerate the TS-distribution figures (Fig. 6 / Fig. 10).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) noexcept {
    if (counts_.empty()) return;
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::ptrdiff_t>(
        t * static_cast<double>(counts_.size()));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  double bin_lo(std::size_t bin) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
  }
  double bin_hi(std::size_t bin) const noexcept { return bin_lo(bin + 1); }

  /// Render an ASCII bar chart (one row per bin) for bench output.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Standardize values to z-scores in place: (x - mean) / stddev.
/// A zero stddev leaves values at 0 (all identical).
void standardize(std::span<double> values);

/// Percentile (0..100) with linear interpolation; input is copied and sorted.
double percentile(std::span<const double> values, double pct);

}  // namespace tmm
