#pragma once
// ASCII table printer for the experiment harnesses. Every bench binary
// that regenerates a paper table formats its rows through this class so
// the output is uniform and diff-able.

#include <cstddef>
#include <string>
#include <vector>

namespace tmm {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);
  /// Append a horizontal separator line.
  void add_separator();

  std::string to_string() const;

  /// Numeric cell helpers.
  static std::string num(double v, int precision = 4);
  static std::string integer(long long v);

 private:
  std::size_t cols_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace tmm
