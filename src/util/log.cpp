#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace tmm {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

/// Startup level: TMM_LOG=debug|info|warn|error|off, default warn so
/// bench tables stay clean. Unrecognized values keep the default.
LogLevel initial_level() {
  LogLevel level = LogLevel::kWarn;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, at first log call.
  if (const char* env = std::getenv("TMM_LOG")) parse_log_level(env, &level);
  return level;
}

// Invariant: the level is an independent filter knob — a logging
// thread racing set_log_level() merely keeps or drops one line under
// the old level; no other state hangs off the value, so relaxed
// loads/stores suffice.
std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Small dense per-thread id (1 = first logging thread), stable for the
/// thread's lifetime; cheaper to read than kernel tids and stable across
/// platforms.
unsigned thread_ordinal() {
  // Invariant: fetch_add only needs to hand out distinct ordinals;
  // nothing is published through the counter, so relaxed suffices.
  static std::atomic<unsigned> next{1};
  thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

bool parse_log_level(const char* text, LogLevel* out) noexcept {
  if (text == nullptr || out == nullptr) return false;
  if (std::strcmp(text, "debug") == 0) *out = LogLevel::kDebug;
  else if (std::strcmp(text, "info") == 0) *out = LogLevel::kInfo;
  else if (std::strcmp(text, "warn") == 0) *out = LogLevel::kWarn;
  else if (std::strcmp(text, "error") == 0) *out = LogLevel::kError;
  else if (std::strcmp(text, "off") == 0) *out = LogLevel::kOff;
  else return false;
  return true;
}

LogLevel log_level() noexcept {
  return level_ref().load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  level_ref().store(level, std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    log_epoch())
          .count();
  std::fprintf(stderr, "[tmm %s +%9.3fs t%u] %s\n", level_name(level), elapsed,
               thread_ordinal(), msg.c_str());
}
}  // namespace detail

}  // namespace tmm
