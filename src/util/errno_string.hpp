#pragma once
// Thread-safe errno rendering. std::strerror writes into shared static
// storage (clang-tidy concurrency-mt-unsafe), and error paths here run
// on worker threads (serve, atomic_io) — so every "<syscall>: <why>"
// message goes through strerror_r instead.

#include <cstring>
#include <string>

namespace tmm::util {

namespace detail {
// glibc with _GNU_SOURCE returns char* (possibly a static string,
// possibly buf); the XSI variant fills buf and returns int. Overload
// on the actual return type so both build unchanged.
inline const char* strerror_result(int rc, const char* buf) noexcept {
  return rc == 0 ? buf : "unknown error";
}
inline const char* strerror_result(const char* s, const char*) noexcept {
  return s;
}
}  // namespace detail

/// strerror(err) into a private buffer; safe from any thread.
inline std::string errno_string(int err) {
  char buf[256];
  buf[0] = '\0';
  return detail::strerror_result(strerror_r(err, buf, sizeof buf), buf);
}

}  // namespace tmm::util
