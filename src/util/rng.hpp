#pragma once
// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the framework (synthetic design generation,
// boundary-constraint sampling, GNN weight initialization) draw from these
// generators so that every test and benchmark is bit-reproducible across
// runs and platforms.

#include <cstdint>
#include <limits>

namespace tmm {

/// SplitMix64: tiny, fast seeding/stream-splitting generator.
/// Used to derive independent seeds for named sub-streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the workhorse generator. Satisfies the C++
/// UniformRandomBitGenerator concept so it can be used with <random>
/// distributions, but we provide the handful of distributions we need
/// directly to keep results identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcd5678ef00ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible
    // for the ranges used here and determinism is what matters.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() noexcept {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586476925286766559 * u2);
  }

  /// Normal with given mean and stddev.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derive an independent generator for a named sub-stream.
  Rng fork(std::uint64_t stream) noexcept {
    SplitMix64 sm((*this)() ^ (stream * 0x9e3779b97f4a7c15ULL));
    Rng r(sm.next());
    return r;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace tmm
