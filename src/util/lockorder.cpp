#include "util/lockorder.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>

namespace tmm::util::lockorder {

namespace {

/// Global analyzer state. Guarded by a plain std::mutex: the analyzer
/// must never run through util::Mutex or it would recurse into itself.
/// Leaked (like the obs registries) because instrumented threads may
/// outlive main and release locks during process teardown.
struct State {
  std::mutex mu;
  std::vector<std::string> class_names;            ///< id -> name
  std::map<std::string, std::uint32_t> class_ids;  ///< name -> id
  /// (from, to) -> edge record; std::map keeps dumps deterministic.
  std::map<std::pair<std::uint32_t, std::uint32_t>, Edge> edges;
  std::vector<Cycle> cycles;
  /// Cycle dedup: one report per distinct closing (from, to) pair.
  std::set<std::pair<std::uint32_t, std::uint32_t>> reported;
};

State& state() {
  static State* s = new State();
  return *s;
}

/// Per-thread stack of currently held lock classes, outermost first.
struct Held {
  std::uint32_t cls;
  std::string site;  ///< "file:line" of the acquisition
};

std::vector<Held>& held_stack() {
  thread_local std::vector<Held> stack;
  return stack;
}

std::string site_of(const std::source_location& loc) {
  const char* file = loc.file_name();
  // Basename only: full build paths make reports unstable across trees.
  for (const char* p = file; *p != '\0'; ++p)
    if (*p == '/') file = p + 1;
  return std::string(file) + ":" + std::to_string(loc.line());
}

/// True when `from` is reachable from `to` over existing edges — i.e.
/// adding the edge (from -> to) would close a cycle. Iterative DFS over
/// the id graph; caller holds s.mu. Fills `path` with the class-id walk
/// to -> ... -> from when found.
bool reaches(const State& s, std::uint32_t to, std::uint32_t from,
             std::vector<std::uint32_t>& path) {
  std::vector<std::vector<std::uint32_t>> work{{to}};
  std::set<std::uint32_t> seen{to};
  while (!work.empty()) {
    std::vector<std::uint32_t> cur = std::move(work.back());
    work.pop_back();
    if (cur.back() == from) {
      path = std::move(cur);
      return true;
    }
    // edges is keyed (from, to): scan the out-edges of cur.back().
    const std::uint32_t node = cur.back();
    for (auto it = s.edges.lower_bound({node, 0});
         it != s.edges.end() && it->first.first == node; ++it) {
      const std::uint32_t next = it->first.second;
      if (!seen.insert(next).second) continue;
      std::vector<std::uint32_t> ext = cur;
      ext.push_back(next);
      work.push_back(std::move(ext));
    }
  }
  return false;
}

}  // namespace

LockClass::LockClass(const char* name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto [it, inserted] =
      s.class_ids.emplace(name, static_cast<std::uint32_t>(
                                    s.class_names.size()));
  if (inserted) s.class_names.emplace_back(name);
  id_ = it->second;
}

const std::string& LockClass::name() const {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.class_names[id_];
}

std::string Cycle::to_string() const {
  std::string out = closing.from + " -> " + closing.to + " (" +
                    closing.from_site + " holding, " + closing.to_site +
                    " acquiring) closes cycle:";
  for (const std::string& c : path) out += " " + c + " ->";
  out += " " + closing.to;
  return out;
}

void on_acquire(const LockClass& cls, const std::source_location& loc) {
  std::vector<Held>& stack = held_stack();
  const std::string site = site_of(loc);
  if (!stack.empty()) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Held& h : stack) {
      const std::pair<std::uint32_t, std::uint32_t> key{h.cls, cls.id()};
      auto it = s.edges.find(key);
      const bool new_edge = it == s.edges.end();
      if (new_edge) {
        Edge e;
        e.from = s.class_names[h.cls];
        e.to = s.class_names[cls.id()];
        e.from_site = h.site;
        e.to_site = site;
        it = s.edges.emplace(key, std::move(e)).first;
      }
      ++it->second.count;
      // A cycle can only appear when the edge does: check the closure
      // once, on first observation. Self-edges (nested acquisition of
      // the same non-recursive class) are length-1 cycles.
      if (new_edge || h.cls == cls.id()) {
        std::vector<std::uint32_t> path;
        const bool self = h.cls == cls.id();
        if ((self || reaches(s, cls.id(), h.cls, path)) &&
            s.reported.insert(key).second) {
          Cycle cyc;
          cyc.closing = it->second;
          if (self)
            cyc.path = {s.class_names[cls.id()]};
          else
            for (const std::uint32_t id : path)
              cyc.path.push_back(s.class_names[id]);
          // Direct stderr (not util/log.hpp): lockorder sits below
          // every other library so the base fault layer can use
          // util::Mutex without a dependency cycle.
          std::fprintf(stderr, "[lockorder] potential deadlock: %s\n",
                       cyc.to_string().c_str());
          s.cycles.push_back(std::move(cyc));
        }
      }
    }
  }
  stack.push_back(Held{cls.id(), site});
}

void on_release(const LockClass& cls) noexcept {
  std::vector<Held>& stack = held_stack();
  // Locks are almost always released in LIFO order; scan from the back
  // so out-of-order release (std::scoped_lock, manual unlock) still
  // removes the right entry.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->cls == cls.id()) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<std::string> registered_classes() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<std::string> out = s.class_names;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Edge> observed_edges() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<Edge> out;
  out.reserve(s.edges.size());
  for (const auto& [key, e] : s.edges) out.push_back(e);
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  return out;
}

std::vector<Cycle> cycles() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.cycles;
}

bool cycle_detected() noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return !s.cycles.empty();
}

void reset_observations() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.edges.clear();
  s.cycles.clear();
  s.reported.clear();
  held_stack().clear();
}

bool write_report(std::ostream& os) {
  os << "lock classes (" << registered_classes().size() << "):\n";
  for (const std::string& name : registered_classes())
    os << "  " << name << "\n";
  const std::vector<Edge> edges = observed_edges();
  os << "observed acquisition edges (" << edges.size() << "):\n";
  for (const Edge& e : edges)
    os << "  " << e.from << " -> " << e.to << "  [" << e.count
       << "x, first " << e.from_site << " -> " << e.to_site << "]\n";
  if (!tracking_compiled_in())
    os << "note: acquisition tracking compiled out in this build "
          "(rebuild with -DTMM_LOCKORDER=ON or CMAKE_BUILD_TYPE=Debug "
          "to observe edges)\n";
  const std::vector<Cycle> found = cycles();
  if (found.empty()) {
    os << "lock hierarchy: acyclic\n";
    return true;
  }
  os << "lock hierarchy: " << found.size() << " potential deadlock(s):\n";
  for (const Cycle& c : found) os << "  " << c.to_string() << "\n";
  return false;
}

}  // namespace tmm::util::lockorder
