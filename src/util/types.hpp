#pragma once
// Shared scalar types and early/late + rise/fall conventions.
//
// Units everywhere in the code base:
//   time        : picoseconds (ps)
//   capacitance : femtofarads (fF)
//   resistance  : kilo-ohms   (kOhm)   => R * C is directly in ps.

#include <cstdint>

namespace tmm {

/// Early/late split index: 0 = early (min), 1 = late (max).
enum : unsigned { kEarly = 0, kLate = 1, kNumEl = 2 };

/// Rise/fall transition index: 0 = rise, 1 = fall.
enum : unsigned { kRise = 0, kFall = 1, kNumRf = 2 };

/// Dense per-pin / per-arc timing payload indexed as [el][rf].
template <typename T>
struct ElRf {
  T v[kNumEl][kNumRf]{};

  T& operator()(unsigned el, unsigned rf) noexcept { return v[el][rf]; }
  const T& operator()(unsigned el, unsigned rf) const noexcept {
    return v[el][rf];
  }

  void fill(const T& x) noexcept {
    for (auto& row : v)
      for (auto& cell : row) cell = x;
  }
};

using PinId = std::uint32_t;
using GateId = std::uint32_t;
using NetId = std::uint32_t;
using CellId = std::uint32_t;
using ArcId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = 0xffffffffu;

}  // namespace tmm
