#include "util/instrument.hpp"

#include <cstdio>
#include <cstring>

namespace tmm {

namespace {

std::size_t read_status_kib(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::size_t kib = 0;
  const std::size_t keylen = std::strlen(key);
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, keylen) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + keylen, " %llu", &v) == 1) kib = v;
      break;
    }
  }
  std::fclose(f);
  return kib;
}

}  // namespace

std::size_t current_rss_bytes() { return read_status_kib("VmRSS:") * 1024; }

std::size_t peak_rss_bytes() { return read_status_kib("VmHWM:") * 1024; }

std::string format_bytes(std::size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  }
  return buf;
}

}  // namespace tmm
