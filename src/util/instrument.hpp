#pragma once
// Wall-clock and memory instrumentation for the generation/usage
// runtime & memory columns of Tables 3–5.

#include <chrono>
#include <cstddef>
#include <string>

namespace tmm {

/// Simple wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Current resident set size of this process in bytes (Linux; 0 elsewhere).
std::size_t current_rss_bytes();

/// Peak resident set size of this process in bytes (Linux; 0 elsewhere).
std::size_t peak_rss_bytes();

/// Human-readable byte count, e.g. "12.3 MB".
std::string format_bytes(std::size_t bytes);

}  // namespace tmm
