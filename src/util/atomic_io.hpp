#pragma once
// Atomic file writes: every durable output of the flow — macro models,
// GNN weights, metrics/trace JSON, checkpoints — goes through
// atomic_write_file (write to <path>.tmp.<pid>, fsync, rename), so a
// run killed at *any* instruction never leaves a torn or half-written
// file at the final path: the file is either absent or complete. The
// CI fault matrix SIGKILLs the flow at the util.atomic_write /
// util.atomic_rename injection sites to prove it.

#include <string>
#include <string_view>

#include "fault/fault.hpp"

namespace tmm::util {

/// Atomically replace `path` with `data`. Returns a kIo failure (and
/// removes the temp file) when any step fails; never leaves a partial
/// file at `path`.
fault::Status atomic_write_file(const std::string& path,
                                std::string_view data);

}  // namespace tmm::util
