#include "util/task_pool.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>

#include "util/log.hpp"

namespace tmm::util {
namespace {

const lockorder::LockClass kJobLockClass("util.taskpool.job");
const lockorder::LockClass kQueueLockClass("util.taskpool.queue");

// Set while a thread executes chunks of a pool job. A parallel_for
// issued from such a thread (nested parallelism, or a kernel calling
// back into the pool) runs inline instead of blocking on job_mu_ —
// a worker waiting for a job that waits for this worker would
// deadlock.
thread_local bool t_in_pool_job = false;

// NOLINTNEXTLINE(concurrency-mt-unsafe): startup/env read, matches
// fault::arm_from_env.
const char* env_lookup(const char* name) { return std::getenv(name); }

}  // namespace

TaskPool::TaskPool(std::size_t threads)
    : job_mu_(kJobLockClass), mu_(kQueueLockClass) {
  const std::size_t workers = threads <= 1 ? 0 : threads - 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

TaskPool::~TaskPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

TaskPool& TaskPool::shared() {
  // Leaked: workers park in cv_.wait at exit; destroying the pool
  // during static teardown would race library users' atexit hooks.
  static TaskPool* pool = new TaskPool(default_threads());
  return *pool;
}

std::size_t TaskPool::default_threads() {
  static const std::size_t resolved = [] {
    std::string err;
    const std::size_t env = env_threads(&err);
    if (!err.empty())
      log_warn("task_pool: %s — using hardware concurrency", err.c_str());
    if (env > 0) return env;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : std::size_t{hw};
  }();
  return resolved;
}

std::size_t TaskPool::env_threads(std::string* error) {
  if (error) error->clear();
  const char* raw = env_lookup("TMM_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  std::size_t value = 0;
  bool ok = true;
  for (const char* p = raw; *p != '\0'; ++p) {
    if (std::isdigit(static_cast<unsigned char>(*p)) == 0 || value > 100000) {
      ok = false;
      break;
    }
    value = value * 10 + static_cast<std::size_t>(*p - '0');
  }
  if (!ok || value == 0) {
    if (error)
      *error = "invalid TMM_THREADS value '" + std::string(raw) +
               "' (expected a positive integer)";
    return 0;
  }
  return value;
}

void TaskPool::run_job(std::size_t n, std::size_t grain,
                       std::size_t max_threads, ChunkFn fn, void* ctx) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  std::size_t cap = max_threads == 0 ? max_parallelism() : max_threads;
  cap = std::min(cap, max_parallelism());
  if (cap <= 1 || chunks <= 1 || t_in_pool_job) {
    // Inline path: same chunk boundaries as the parallel path so fn
    // observes identical (begin, end) ranges either way.
    for (std::size_t b = 0; b < n; b += grain) fn(ctx, b, std::min(b + grain, n));
    return;
  }

  MutexLock job_lock(job_mu_);
  std::uint64_t epoch = 0;
  {
    MutexUniqueLock lock(mu_);
    // A straggler worker that woke for the previous job may still be
    // draining its (exhausted) chunk queue; the counters below cannot
    // be reset from under it. Explicit wait loop (not the predicate
    // overload) so active_workers_ stays lexically under the scoped
    // capability.
    while (active_workers_ != 0) done_cv_.wait(lock.native());
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_n_ = n;
    job_grain_ = grain;
    job_chunks_ = chunks;
    job_worker_budget_ = cap - 1;
    job_tickets_ = 0;
    job_error_ = nullptr;
    next_chunk_.store(0, std::memory_order_relaxed);
    done_chunks_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    ++epoch_;
    epoch = epoch_;
  }
  cv_.notify_all();

  t_in_pool_job = true;
  drain(fn, ctx, n, grain, chunks);
  t_in_pool_job = false;

  std::exception_ptr error;
  {
    MutexUniqueLock lock(mu_);
    // Barrier: every chunk executed (or abandoned after an exception)
    // and every participating worker has left the queue. done_chunks_
    // is written before each worker's active_workers_ decrement under
    // mu_, so the load here is ordered.
    while (active_workers_ != 0 ||
           done_chunks_.load(std::memory_order_acquire) != job_chunks_)
      done_cv_.wait(lock.native());
    error = job_error_;
    job_error_ = nullptr;
    job_fn_ = nullptr;
    job_ctx_ = nullptr;
    (void)epoch;
  }
  if (error) std::rethrow_exception(error);
}

void TaskPool::drain(ChunkFn fn, void* ctx, std::size_t n, std::size_t grain,
                     std::size_t chunks) {
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks) return;
    if (!abort_.load(std::memory_order_relaxed)) {
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(begin + grain, n);
      try {
        fn(ctx, begin, end);
      } catch (...) {
        abort_.store(true, std::memory_order_relaxed);
        MutexLock lock(mu_);
        if (!job_error_) job_error_ = std::current_exception();
      }
    }
    // acq_rel: the caller's post-barrier reads happen-after every
    // chunk's writes once the count reaches job_chunks_.
    done_chunks_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void TaskPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    ChunkFn fn = nullptr;
    void* ctx = nullptr;
    std::size_t n = 0;
    std::size_t grain = 0;
    std::size_t chunks = 0;
    {
      MutexUniqueLock lock(mu_);
      while (!stop_ && epoch_ == seen) cv_.wait(lock.native());
      if (stop_) return;
      seen = epoch_;
      if (job_tickets_ >= job_worker_budget_) continue;  // over this job's cap
      ++job_tickets_;
      ++active_workers_;
      fn = job_fn_;
      ctx = job_ctx_;
      n = job_n_;
      grain = job_grain_;
      chunks = job_chunks_;
    }
    t_in_pool_job = true;
    drain(fn, ctx, n, grain, chunks);
    t_in_pool_job = false;
    {
      MutexLock lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace tmm::util
