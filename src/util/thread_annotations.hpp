#pragma once
// Clang thread-safety analysis annotations (docs/ANALYSIS.md,
// "Concurrency invariants").
//
// These macros attach static lock-discipline contracts to fields and
// functions: which mutex guards a field, which capabilities a function
// acquires, releases, or requires. Under Clang with -Wthread-safety
// (the TMM_THREAD_SAFETY=ON CMake option promotes it to an error) the
// compiler verifies every annotated access; under GCC — which has no
// capability analysis — every macro expands to nothing, so the
// annotations are free documentation in the default build.
//
// Conventions:
//   - every lock-protected field is annotated TMM_GUARDED_BY(mu);
//   - locks are taken through util::Mutex / util::MutexLock
//     (util/mutex.hpp), whose capability annotations live here too;
//   - functions that must be called with a lock held are annotated
//     TMM_REQUIRES(mu), functions that must NOT hold it TMM_EXCLUDES(mu).

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TMM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TMM_THREAD_ANNOTATION
#define TMM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex").
#define TMM_CAPABILITY(x) TMM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (std::lock_guard shape).
#define TMM_SCOPED_CAPABILITY TMM_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be read or written while holding `x`.
#define TMM_GUARDED_BY(x) TMM_THREAD_ANNOTATION(guarded_by(x))

/// The pointee of the annotated pointer is protected by `x`.
#define TMM_PT_GUARDED_BY(x) TMM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the listed capabilities (exclusively).
#define TMM_REQUIRES(...) \
  TMM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities and does not release them.
#define TMM_ACQUIRE(...) \
  TMM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define TMM_RELEASE(...) \
  TMM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define TMM_TRY_ACQUIRE(b, ...) \
  TMM_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define TMM_EXCLUDES(...) TMM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a static acquisition-order constraint between capabilities.
#define TMM_ACQUIRED_BEFORE(...) \
  TMM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TMM_ACQUIRED_AFTER(...) \
  TMM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding it.
#define TMM_RETURN_CAPABILITY(x) TMM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions the analysis cannot model (e.g. locking
/// through an opaque native handle). Use sparingly, with a comment.
#define TMM_NO_THREAD_SAFETY_ANALYSIS \
  TMM_THREAD_ANNOTATION(no_thread_safety_analysis)
