#include "liberty/library_gen.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tmm {

double DriveModel::delay(double slew_ps, double load_ff) const {
  // Affine core + saturating cross term. Monotone nondecreasing in both
  // arguments, mildly super-linear at small values, saturating at large —
  // the shape real NLDM surfaces have, so bilinear interpolation carries
  // a small but nonzero error between grid points.
  const double affine = intrinsic_ps + slew_coef * slew_ps + res_kohm * load_ff;
  const double cross = nonlin * 12.0 * std::log1p(slew_ps * load_ff / 60.0);
  return affine + cross;
}

double DriveModel::out_slew(double slew_ps, double load_ff) const {
  const double affine =
      out_slew_base + out_slew_res * load_ff + out_slew_in * slew_ps;
  const double cross = nonlin * 4.0 * std::log1p(slew_ps * load_ff / 90.0);
  return affine + cross;
}

void characterize(const DriveModel& model, const LibraryGenConfig& cfg,
                  ElRf<Lut>& delay_out, ElRf<Lut>& slew_out) {
  const auto& sg = cfg.slew_grid;
  const auto& lg = cfg.load_grid;
  for (unsigned el = 0; el < kNumEl; ++el) {
    const double el_scale = el == kLate ? 1.0 : cfg.early_derate;
    for (unsigned rf = 0; rf < kNumRf; ++rf) {
      const double rf_scale = rf == kRise ? 1.0 : cfg.fall_factor;
      std::vector<double> dvals;
      std::vector<double> svals;
      dvals.reserve(sg.size() * lg.size());
      svals.reserve(sg.size() * lg.size());
      for (double s : sg) {
        for (double c : lg) {
          dvals.push_back(model.delay(s, c) * el_scale * rf_scale);
          svals.push_back(model.out_slew(s, c) * el_scale * rf_scale);
        }
      }
      delay_out(el, rf) = Lut::table2d(sg, lg, std::move(dvals));
      slew_out(el, rf) = Lut::table2d(sg, lg, std::move(svals));
    }
  }
}

namespace {

/// Build a combinational cell with `num_inputs` inputs and one output.
Cell make_comb_cell(const std::string& name, std::size_t num_inputs,
                    ArcSense sense, const DriveModel& model,
                    const LibraryGenConfig& cfg, double input_cap_ff,
                    Rng& rng) {
  Cell c;
  c.name = name;
  for (std::size_t i = 0; i < num_inputs; ++i) {
    CellPort p;
    p.name = num_inputs == 1 ? "A" : std::string(1, static_cast<char>('A' + i));
    p.dir = PortDir::kInput;
    p.cap_ff = input_cap_ff;
    c.ports.push_back(p);
  }
  CellPort out;
  out.name = num_inputs == 1 ? "Y" : "Y";
  out.dir = PortDir::kOutput;
  c.ports.push_back(out);
  const auto out_idx = static_cast<std::uint32_t>(num_inputs);

  for (std::uint32_t i = 0; i < num_inputs; ++i) {
    ArcSpec arc;
    arc.from_port = i;
    arc.to_port = out_idx;
    arc.kind = ArcKind::kCombinational;
    arc.sense = sense;
    // Later inputs of a multi-input gate are slightly slower — gives
    // distinct per-arc surfaces, as in real libraries.
    DriveModel m = model;
    m.intrinsic_ps *= 1.0 + 0.07 * static_cast<double>(i) +
                      0.02 * rng.uniform();
    characterize(m, cfg, arc.delay, arc.out_slew);
    c.arcs.push_back(std::move(arc));
  }
  return c;
}

Cell make_dff_cell(const std::string& name, const DriveModel& model,
                   const LibraryGenConfig& cfg) {
  Cell c;
  c.name = name;
  c.is_sequential = true;
  c.ports.push_back({"D", PortDir::kInput, 1.4, false});
  c.ports.push_back({"CK", PortDir::kInput, 1.0, true});
  c.ports.push_back({"Q", PortDir::kOutput, 0.0, false});

  // CK -> Q launch arc.
  {
    ArcSpec arc;
    arc.from_port = 1;
    arc.to_port = 2;
    arc.kind = ArcKind::kClockToQ;
    arc.sense = ArcSense::kNonUnate;
    DriveModel m = model;
    m.intrinsic_ps *= 1.6;  // clk-to-q is slower than a gate stage
    characterize(m, cfg, arc.delay, arc.out_slew);
    c.arcs.push_back(std::move(arc));
  }

  // Setup and hold check arcs: guard time as a function of
  // (clock slew, data slew); stored on the late/early rise tables.
  auto make_check = [&](ArcKind kind, double base, double dcoef,
                        double ccoef) {
    ArcSpec arc;
    arc.from_port = 1;  // CK
    arc.to_port = 0;    // D
    arc.kind = kind;
    arc.sense = ArcSense::kNonUnate;
    const auto& sg = cfg.slew_grid;
    for (unsigned el = 0; el < kNumEl; ++el) {
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        std::vector<double> vals;
        vals.reserve(sg.size() * sg.size());
        for (double cs : sg)
          for (double ds : sg)
            vals.push_back(base + dcoef * ds + ccoef * cs);
        arc.delay(el, rf) = Lut::table2d(sg, sg, std::move(vals));
        arc.out_slew(el, rf) = Lut::scalar(0.0);
      }
    }
    return arc;
  };
  c.arcs.push_back(make_check(ArcKind::kSetup, 22.0, 0.35, -0.08));
  c.arcs.push_back(make_check(ArcKind::kHold, 6.0, -0.10, 0.05));
  return c;
}

}  // namespace

Library generate_library(const LibraryGenConfig& cfg) {
  Rng rng(cfg.seed);
  Library lib(library_name_for_seed(cfg.seed));

  struct Variant {
    const char* base;
    std::size_t inputs;
    ArcSense sense;
    double intrinsic;
    double res;
    double cap;
  };
  const Variant variants[] = {
      {"INV", 1, ArcSense::kNegativeUnate, 7.0, 2.2, 1.1},
      {"BUF", 1, ArcSense::kPositiveUnate, 12.0, 2.0, 1.2},
      {"NAND2", 2, ArcSense::kNegativeUnate, 9.0, 2.6, 1.3},
      {"NOR2", 2, ArcSense::kNegativeUnate, 10.0, 3.0, 1.3},
      {"AND2", 2, ArcSense::kPositiveUnate, 14.0, 2.4, 1.3},
      {"OR2", 2, ArcSense::kPositiveUnate, 15.0, 2.5, 1.3},
      {"XOR2", 2, ArcSense::kNonUnate, 18.0, 2.8, 1.6},
      {"AOI21", 3, ArcSense::kNegativeUnate, 12.0, 2.9, 1.4},
      {"MUX2", 3, ArcSense::kNonUnate, 17.0, 2.7, 1.5},
  };
  const double strengths[] = {1.0, 2.0, 4.0};
  const char* suffix[] = {"_X1", "_X2", "_X4"};

  for (const auto& v : variants) {
    for (std::size_t k = 0; k < 3; ++k) {
      DriveModel m;
      m.intrinsic_ps = v.intrinsic * (1.0 + 0.12 / strengths[k]);
      m.res_kohm = v.res / strengths[k];
      m.out_slew_res = 1.1 / strengths[k];
      m.nonlin = cfg.nonlinearity;
      lib.add_cell(make_comb_cell(std::string(v.base) + suffix[k], v.inputs,
                                  v.sense, m, cfg, v.cap * strengths[k], rng));
    }
  }

  // Clock buffers: low resistance, balanced rise/fall.
  for (std::size_t k = 0; k < 3; ++k) {
    DriveModel m;
    m.intrinsic_ps = 9.0 * (1.0 + 0.1 / strengths[k]);
    m.res_kohm = 1.4 / strengths[k];
    m.out_slew_res = 0.8 / strengths[k];
    m.nonlin = cfg.nonlinearity * 0.5;
    lib.add_cell(make_comb_cell(std::string("CLKBUF") + suffix[k], 1,
                                ArcSense::kPositiveUnate, m, cfg,
                                1.1 * strengths[k], rng));
  }

  {
    DriveModel m;
    m.intrinsic_ps = 14.0;
    m.res_kohm = 2.0;
    m.nonlin = cfg.nonlinearity;
    lib.add_cell(make_dff_cell("DFF_X1", m, cfg));
  }
  return lib;
}

namespace {

constexpr std::uint64_t kDefaultLibSeed = 42;
constexpr const char* kBaseLibName = "tmm_nldm45";

char sense_char(ArcSense s) {
  switch (s) {
    case ArcSense::kPositiveUnate: return 'p';
    case ArcSense::kNegativeUnate: return 'n';
    case ArcSense::kNonUnate: return 'x';
  }
  return 'x';
}

}  // namespace

std::string library_name_for_seed(std::uint64_t seed) {
  if (seed == kDefaultLibSeed) return kBaseLibName;
  return std::string(kBaseLibName) + "_s" + std::to_string(seed);
}

bool library_config_for_name(std::string_view name, LibraryGenConfig* cfg) {
  LibraryGenConfig out;
  if (name == kBaseLibName) {
    out.seed = kDefaultLibSeed;
    if (cfg != nullptr) *cfg = out;
    return true;
  }
  const std::string prefix = std::string(kBaseLibName) + "_s";
  if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix)
    return false;
  const std::string digits(name.substr(prefix.size()));
  char* end = nullptr;
  const unsigned long long seed = std::strtoull(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || digits.empty()) return false;
  for (char c : digits)
    if (c < '0' || c > '9') return false;
  // The default seed must round-trip through the *short* name only, so
  // one library name never has two spellings.
  if (seed == kDefaultLibSeed) return false;
  out.seed = seed;
  if (cfg != nullptr) *cfg = out;
  return true;
}

std::string names_cell_name(const NamesCellSpec& spec) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016" PRIx64, spec.cover_hash);
  std::string name = "NK" + std::to_string(spec.num_inputs) + "_";
  for (ArcSense s : spec.senses) name += sense_char(s);
  if (!spec.senses.empty()) name += '_';
  name += hex;
  return name;
}

bool parse_names_cell_name(std::string_view name, NamesCellSpec* spec) {
  NamesCellSpec out;
  if (name.size() < 2 || name.substr(0, 2) != "NK") return false;
  std::size_t i = 2;
  std::size_t k = 0;
  bool any_digit = false;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    k = k * 10 + static_cast<std::size_t>(name[i] - '0');
    if (k > 4096) return false;
    any_digit = true;
    ++i;
  }
  if (!any_digit || i >= name.size() || name[i] != '_') return false;
  ++i;
  out.num_inputs = k;
  out.senses.reserve(k);
  for (std::size_t j = 0; j < k; ++j, ++i) {
    if (i >= name.size()) return false;
    switch (name[i]) {
      case 'p': out.senses.push_back(ArcSense::kPositiveUnate); break;
      case 'n': out.senses.push_back(ArcSense::kNegativeUnate); break;
      case 'x': out.senses.push_back(ArcSense::kNonUnate); break;
      default: return false;
    }
  }
  if (k > 0) {
    if (i >= name.size() || name[i] != '_') return false;
    ++i;
  }
  if (name.size() - i != 16) return false;
  std::uint64_t hash = 0;
  for (; i < name.size(); ++i) {
    const char c = name[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else return false;
    hash = (hash << 4) | digit;
  }
  out.cover_hash = hash;
  if (spec != nullptr) *spec = std::move(out);
  return true;
}

Cell synthesize_names_cell(const NamesCellSpec& spec,
                           const LibraryGenConfig& cfg) {
  // Everything below draws from this generator only, in a fixed order,
  // so (cover hash, library seed) fully determines the cell — the
  // seed-stability contract of the frontend tech mapper.
  Rng rng(0x6e616d6573636cULL ^ spec.cover_hash ^
          (cfg.seed * 0x9e3779b97f4a7c15ULL));
  const std::size_t k = spec.num_inputs;

  Cell c;
  c.name = names_cell_name(spec);
  const double input_cap_ff = rng.uniform(1.1, 1.6);
  for (std::size_t i = 0; i < k; ++i) {
    CellPort p;
    p.name = "I" + std::to_string(i);
    p.dir = PortDir::kInput;
    p.cap_ff = input_cap_ff;
    c.ports.push_back(p);
  }
  CellPort out;
  out.name = "Y";
  out.dir = PortDir::kOutput;
  c.ports.push_back(out);

  DriveModel base;
  base.intrinsic_ps =
      8.0 + 1.1 * static_cast<double>(k) + rng.uniform(0.0, 4.0);
  base.res_kohm = rng.uniform(2.0, 3.2);
  base.out_slew_res = rng.uniform(0.9, 1.3);
  base.nonlin = cfg.nonlinearity;

  const auto out_idx = static_cast<std::uint32_t>(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    ArcSpec arc;
    arc.from_port = i;
    arc.to_port = out_idx;
    arc.kind = ArcKind::kCombinational;
    arc.sense = spec.senses[i];
    DriveModel m = base;
    m.intrinsic_ps *= 1.0 + 0.07 * static_cast<double>(i) +
                      0.02 * rng.uniform();
    characterize(m, cfg, arc.delay, arc.out_slew);
    c.arcs.push_back(std::move(arc));
  }
  return c;
}

CellId ensure_names_cell(Library& lib, const NamesCellSpec& spec,
                         const LibraryGenConfig& cfg) {
  const std::string name = names_cell_name(spec);
  if (lib.has_cell(name)) return lib.cell_id(name);
  return lib.add_cell(synthesize_names_cell(spec, cfg));
}

}  // namespace tmm
