#pragma once
// Standard-cell description: ports, timing-arc specifications and their
// early/late x rise/fall NLDM tables.

#include <string>
#include <vector>

#include "liberty/lut.hpp"
#include "util/types.hpp"

namespace tmm {

enum class PortDir : std::uint8_t { kInput, kOutput };

/// Timing-arc flavour. Combinational and clock->Q arcs are *delay* arcs
/// (they appear as edges of the timing graph); setup/hold are *check*
/// arcs (they constrain the data pin's required arrival time).
enum class ArcKind : std::uint8_t {
  kCombinational,
  kClockToQ,
  kSetup,
  kHold,
};

/// Unateness: how the output transition relates to the input transition.
enum class ArcSense : std::uint8_t {
  kPositiveUnate,  // rise->rise, fall->fall
  kNegativeUnate,  // rise->fall, fall->rise
  kNonUnate,       // either input transition can cause either output one
};

struct CellPort {
  std::string name;
  PortDir dir = PortDir::kInput;
  /// Input pin capacitance in fF (0 for outputs).
  double cap_ff = 0.0;
  /// True for the clock input of a sequential cell.
  bool is_clock = false;
};

/// One timing arc of a cell. For delay arcs, `delay` / `out_slew` map
/// (input slew, output load) to arc delay / output slew. For check arcs,
/// `delay` maps (clock slew, data slew) to the guard time and `out_slew`
/// is unused.
struct ArcSpec {
  std::uint32_t from_port = 0;  ///< index into Cell::ports
  std::uint32_t to_port = 0;    ///< index into Cell::ports
  ArcKind kind = ArcKind::kCombinational;
  ArcSense sense = ArcSense::kPositiveUnate;
  ElRf<Lut> delay;
  ElRf<Lut> out_slew;
};

struct Cell {
  std::string name;
  std::vector<CellPort> ports;
  std::vector<ArcSpec> arcs;
  bool is_sequential = false;

  /// Index of the named port, or kInvalidId.
  std::uint32_t port_index(const std::string& port_name) const {
    for (std::uint32_t i = 0; i < ports.size(); ++i)
      if (ports[i].name == port_name) return i;
    return kInvalidId;
  }

  std::size_t num_inputs() const {
    std::size_t n = 0;
    for (const auto& p : ports)
      if (p.dir == PortDir::kInput) ++n;
    return n;
  }
};

/// Map an input transition through an arc's sense to the output
/// transitions it can trigger. Returns a bitmask over {kRise, kFall}.
inline unsigned output_transitions(ArcSense sense, unsigned in_rf) {
  switch (sense) {
    case ArcSense::kPositiveUnate: return 1u << in_rf;
    case ArcSense::kNegativeUnate: return 1u << (1u - in_rf);
    case ArcSense::kNonUnate: return 0b11u;
  }
  return 0b11u;
}

/// Inverse of output_transitions: which input transition(s) can produce
/// the given output transition.
inline unsigned input_transitions(ArcSense sense, unsigned out_rf) {
  switch (sense) {
    case ArcSense::kPositiveUnate: return 1u << out_rf;
    case ArcSense::kNegativeUnate: return 1u << (1u - out_rf);
    case ArcSense::kNonUnate: return 0b11u;
  }
  return 0b11u;
}

}  // namespace tmm
