#pragma once
// Liberty-syntax (.lib) exporter for the generated cell library.
//
// The internal text format (Library::write) is compact and loss-free;
// this writer instead emits genuine Liberty syntax — `library`, `cell`,
// `pin`, `timing` groups with `lu_table_template`s — so the generated
// library can be inspected with standard EDA tooling and diffed against
// real libraries. One file per corner (early/late), as TAU-style flows
// ship them.

#include <iosfwd>

#include "liberty/library.hpp"

namespace tmm {

struct LibertyWriteOptions {
  /// Which corner's tables to emit (Liberty files are per-corner).
  unsigned el = kLate;
  /// Nominal units recorded in the header.
  const char* time_unit = "1ps";
  const char* cap_unit = "1ff";
};

/// Emit the library in Liberty syntax; returns bytes written.
std::size_t write_liberty(const Library& lib, std::ostream& os,
                          const LibertyWriteOptions& opt = {});

}  // namespace tmm
