#pragma once
// Non-linear delay model (NLDM) lookup tables.
//
// A Lut maps (input slew, output load) -> value with bilinear
// interpolation inside the index grid and linear extrapolation outside,
// matching the semantics of Liberty `lu_table_template`s. Tables may be
// one-dimensional (slew only) — the form interior arcs of a macro model
// take after serial merging, since their downstream load is fixed — or
// scalar (constants such as FF setup/hold guard times).

#include <cstddef>
#include <span>
#include <vector>

namespace tmm {

class Lut {
 public:
  /// Scalar table (constant value).
  static Lut scalar(double value);
  /// 1-D table over input slew.
  static Lut table1d(std::vector<double> slew_index,
                     std::vector<double> values);
  /// 2-D table over (input slew, output load), row-major:
  /// values[i * load_index.size() + j] = f(slew_index[i], load_index[j]).
  static Lut table2d(std::vector<double> slew_index,
                     std::vector<double> load_index,
                     std::vector<double> values);

  Lut() = default;

  bool is_scalar() const noexcept {
    return slew_index_.empty() && load_index_.empty();
  }
  bool is_1d() const noexcept {
    return !slew_index_.empty() && load_index_.empty();
  }
  bool is_2d() const noexcept { return !load_index_.empty(); }

  std::span<const double> slew_index() const noexcept { return slew_index_; }
  std::span<const double> load_index() const noexcept { return load_index_; }
  std::span<const double> values() const noexcept { return values_; }

  /// Evaluate the table. For 1-D/scalar tables `load` is ignored.
  double lookup(double slew, double load) const noexcept;

  /// Number of stored doubles (index + values); drives the model-size metric.
  std::size_t storage_doubles() const noexcept {
    return slew_index_.size() + load_index_.size() + values_.size();
  }

  friend bool operator==(const Lut&, const Lut&) = default;

 private:
  std::vector<double> slew_index_;
  std::vector<double> load_index_;
  std::vector<double> values_;
};

/// Piecewise-linear interpolation helpers shared with index selection.
namespace interp {

/// Find the interpolation segment for x in the ascending grid `axis`
/// (size >= 2): returns i such that the segment [axis[i], axis[i+1]]
/// is used, clamped for extrapolation.
std::size_t segment(std::span<const double> axis, double x) noexcept;

/// 1-D linear interpolation/extrapolation of y(axis) at x.
double linear(std::span<const double> axis, std::span<const double> y,
              double x) noexcept;

}  // namespace interp

}  // namespace tmm
