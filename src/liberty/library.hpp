#pragma once
// Cell library container with name lookup and text (de)serialization.
// The same text format is reused for macro-model storage, which is what
// the "model file size" columns of Tables 3-5 measure.

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "liberty/cell.hpp"

namespace tmm {

class Library {
 public:
  Library() = default;
  explicit Library(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Add a cell; its name must be unique. Returns its id.
  CellId add_cell(Cell cell);

  const Cell& cell(CellId id) const { return cells_.at(id); }
  CellId cell_id(const std::string& cell_name) const;
  bool has_cell(const std::string& cell_name) const {
    return by_name_.count(cell_name) != 0;
  }
  std::size_t num_cells() const noexcept { return cells_.size(); }
  const std::vector<Cell>& cells() const noexcept { return cells_; }

  /// Serialize to a compact text format; returns bytes written.
  std::size_t write(std::ostream& os) const;
  /// Parse a library previously produced by write(). Throws on error.
  static Library read(std::istream& is);

  /// Size in bytes of the serialized form (without materializing a file).
  std::size_t serialized_size() const;

 private:
  std::string name_ = "lib";
  std::vector<Cell> cells_;
  std::unordered_map<std::string, CellId> by_name_;
};

}  // namespace tmm
