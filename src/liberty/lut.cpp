#include "liberty/lut.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "fault/fault.hpp"

namespace tmm {

namespace {

/// Every constructor rejects non-finite surfaces: a NaN delay entry
/// (corrupt file, poisoned re-characterization) interpolates to NaN
/// arrivals and corrupts labels and models silently otherwise.
void check_finite(const std::vector<double>& values, const char* which) {
  for (double v : values)
    if (!std::isfinite(v))
      throw fault::FlowError(fault::ErrorCode::kNumeric, "liberty.lut",
                             std::string("non-finite ") + which +
                                 " entry in lookup table");
}

}  // namespace

Lut Lut::scalar(double value) {
  Lut l;
  l.values_ = {value};
  check_finite(l.values_, "value");
  return l;
}

Lut Lut::table1d(std::vector<double> slew_index, std::vector<double> values) {
  if (slew_index.size() != values.size() || slew_index.size() < 2)
    throw std::invalid_argument("Lut::table1d: size mismatch");
  for (std::size_t i = 1; i < slew_index.size(); ++i)
    if (!(slew_index[i] > slew_index[i - 1]))
      throw std::invalid_argument("Lut::table1d: index not ascending");
  Lut l;
  l.slew_index_ = std::move(slew_index);
  l.values_ = std::move(values);
  check_finite(l.slew_index_, "index");
  check_finite(l.values_, "value");
  return l;
}

Lut Lut::table2d(std::vector<double> slew_index, std::vector<double> load_index,
                 std::vector<double> values) {
  if (slew_index.size() < 2 || load_index.size() < 2 ||
      values.size() != slew_index.size() * load_index.size())
    throw std::invalid_argument("Lut::table2d: size mismatch");
  for (std::size_t i = 1; i < slew_index.size(); ++i)
    if (!(slew_index[i] > slew_index[i - 1]))
      throw std::invalid_argument("Lut::table2d: slew index not ascending");
  for (std::size_t j = 1; j < load_index.size(); ++j)
    if (!(load_index[j] > load_index[j - 1]))
      throw std::invalid_argument("Lut::table2d: load index not ascending");
  Lut l;
  l.slew_index_ = std::move(slew_index);
  l.load_index_ = std::move(load_index);
  l.values_ = std::move(values);
  check_finite(l.slew_index_, "index");
  check_finite(l.load_index_, "index");
  check_finite(l.values_, "value");
  return l;
}

namespace interp {

std::size_t segment(std::span<const double> axis, double x) noexcept {
  assert(axis.size() >= 2);
  // Binary search for the last index i with axis[i] <= x, clamped so that
  // i+1 is valid; values outside the grid extrapolate on the end segment.
  std::size_t lo = 0;
  std::size_t hi = axis.size() - 2;
  if (x <= axis[0]) return 0;
  if (x >= axis[axis.size() - 2]) return axis.size() - 2;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (axis[mid] <= x)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

double linear(std::span<const double> axis, std::span<const double> y,
              double x) noexcept {
  const std::size_t i = segment(axis, x);
  const double x0 = axis[i];
  const double x1 = axis[i + 1];
  const double t = (x - x0) / (x1 - x0);
  return y[i] + t * (y[i + 1] - y[i]);
}

}  // namespace interp

double Lut::lookup(double slew, double load) const noexcept {
  if (is_scalar()) return values_.empty() ? 0.0 : values_[0];
  if (is_1d()) return interp::linear(slew_index_, values_, slew);

  const std::size_t nj = load_index_.size();
  const std::size_t i = interp::segment(slew_index_, slew);
  const std::size_t j = interp::segment(load_index_, load);
  const double s0 = slew_index_[i];
  const double s1 = slew_index_[i + 1];
  const double c0 = load_index_[j];
  const double c1 = load_index_[j + 1];
  const double ts = (slew - s0) / (s1 - s0);
  const double tc = (load - c0) / (c1 - c0);
  const double v00 = values_[i * nj + j];
  const double v01 = values_[i * nj + j + 1];
  const double v10 = values_[(i + 1) * nj + j];
  const double v11 = values_[(i + 1) * nj + j + 1];
  const double a = v00 + tc * (v01 - v00);
  const double b = v10 + tc * (v11 - v10);
  return a + ts * (b - a);
}

}  // namespace tmm
