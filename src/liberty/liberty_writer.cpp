#include "liberty/liberty_writer.hpp"

#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace tmm {

namespace {

std::string join(std::span<const double> values) {
  std::ostringstream os;
  os.precision(6);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << ", ";
    os << values[i];
  }
  return os.str();
}

/// Template signature: the index vectors a table uses.
std::string template_key(const Lut& lut) {
  return join(lut.slew_index()) + "|" + join(lut.load_index());
}

void write_lut_values(std::ostream& os, const Lut& lut, const char* indent) {
  if (lut.is_scalar()) {
    os << indent << "values(\"" << lut.values()[0] << "\");\n";
    return;
  }
  os << indent << "index_1(\"" << join(lut.slew_index()) << "\");\n";
  if (lut.is_2d())
    os << indent << "index_2(\"" << join(lut.load_index()) << "\");\n";
  os << indent << "values( \\\n";
  const std::size_t cols =
      lut.is_2d() ? lut.load_index().size() : lut.slew_index().size();
  const std::size_t rows = lut.values().size() / cols;
  for (std::size_t r = 0; r < rows; ++r) {
    os << indent << "  \""
       << join(lut.values().subspan(r * cols, cols)) << "\"";
    os << (r + 1 < rows ? ", \\\n" : " \\\n");
  }
  os << indent << ");\n";
}

const char* timing_type(ArcKind kind) {
  switch (kind) {
    case ArcKind::kCombinational: return "combinational";
    case ArcKind::kClockToQ: return "rising_edge";
    case ArcKind::kSetup: return "setup_rising";
    case ArcKind::kHold: return "hold_rising";
  }
  return "combinational";
}

const char* timing_sense(ArcSense sense) {
  switch (sense) {
    case ArcSense::kPositiveUnate: return "positive_unate";
    case ArcSense::kNegativeUnate: return "negative_unate";
    case ArcSense::kNonUnate: return "non_unate";
  }
  return "non_unate";
}

}  // namespace

std::size_t write_liberty(const Library& lib, std::ostream& os,
                          const LibertyWriteOptions& opt) {
  std::ostringstream buf;
  buf.precision(6);
  const char* corner = opt.el == kLate ? "late" : "early";
  buf << "library (" << lib.name() << "_" << corner << ") {\n";
  buf << "  delay_model : table_lookup;\n";
  buf << "  time_unit : \"" << opt.time_unit << "\";\n";
  buf << "  capacitive_load_unit (1, " << opt.cap_unit << ");\n\n";

  // Collect the distinct table templates used by this corner.
  std::map<std::string, std::pair<std::string, const Lut*>> templates;
  auto register_template = [&](const Lut& lut) {
    if (lut.is_scalar()) return std::string("scalar");
    const std::string key = template_key(lut);
    auto it = templates.find(key);
    if (it == templates.end()) {
      const std::string name =
          "tmpl_" + std::to_string(templates.size() + 1);
      it = templates.emplace(key, std::make_pair(name, &lut)).first;
    }
    return it->second.first;
  };
  for (const auto& cell : lib.cells())
    for (const auto& arc : cell.arcs)
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        register_template(arc.delay(opt.el, rf));
        register_template(arc.out_slew(opt.el, rf));
      }
  for (const auto& [key, entry] : templates) {
    (void)key;
    const Lut& lut = *entry.second;
    buf << "  lu_table_template (" << entry.first << ") {\n";
    buf << "    variable_1 : input_net_transition;\n";
    if (lut.is_2d())
      buf << "    variable_2 : total_output_net_capacitance;\n";
    buf << "    index_1(\"" << join(lut.slew_index()) << "\");\n";
    if (lut.is_2d())
      buf << "    index_2(\"" << join(lut.load_index()) << "\");\n";
    buf << "  }\n";
  }
  buf << '\n';

  for (const auto& cell : lib.cells()) {
    buf << "  cell (" << cell.name << ") {\n";
    if (cell.is_sequential) {
      buf << "    ff (IQ, IQN) { clocked_on : \"CK\"; next_state : \"D\"; "
             "}\n";
    }
    for (std::uint32_t pi = 0; pi < cell.ports.size(); ++pi) {
      const CellPort& port = cell.ports[pi];
      buf << "    pin (" << port.name << ") {\n";
      buf << "      direction : "
          << (port.dir == PortDir::kInput ? "input" : "output") << ";\n";
      if (port.dir == PortDir::kInput)
        buf << "      capacitance : " << port.cap_ff << ";\n";
      if (port.is_clock) buf << "      clock : true;\n";
      // Timing groups live on the *to* pin in Liberty.
      for (const auto& arc : cell.arcs) {
        if (arc.to_port != pi) continue;
        buf << "      timing () {\n";
        buf << "        related_pin : \"" << cell.ports[arc.from_port].name
            << "\";\n";
        buf << "        timing_type : " << timing_type(arc.kind) << ";\n";
        if (arc.kind == ArcKind::kCombinational)
          buf << "        timing_sense : " << timing_sense(arc.sense)
              << ";\n";
        const char* group_names[2][2] = {{"cell_rise", "cell_fall"},
                                         {"rise_transition",
                                          "fall_transition"}};
        const bool check =
            arc.kind == ArcKind::kSetup || arc.kind == ArcKind::kHold;
        for (unsigned rf = 0; rf < kNumRf; ++rf) {
          const Lut& d = arc.delay(opt.el, rf);
          const char* gname =
              check ? (rf == kRise ? "rise_constraint" : "fall_constraint")
                    : group_names[0][rf];
          buf << "        " << gname << " (" << register_template(d)
              << ") {\n";
          write_lut_values(buf, d, "          ");
          buf << "        }\n";
          if (!check) {
            const Lut& s = arc.out_slew(opt.el, rf);
            buf << "        " << group_names[1][rf] << " ("
                << register_template(s) << ") {\n";
            write_lut_values(buf, s, "          ");
            buf << "        }\n";
          }
        }
        buf << "      }\n";
      }
      buf << "    }\n";
    }
    buf << "  }\n";
  }
  buf << "}\n";
  const std::string s = buf.str();
  os << s;
  return s.size();
}

}  // namespace tmm
