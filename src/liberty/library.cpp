#include "liberty/library.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tmm {

CellId Library::add_cell(Cell cell) {
  auto [it, inserted] =
      by_name_.emplace(cell.name, static_cast<CellId>(cells_.size()));
  if (!inserted)
    throw std::invalid_argument("Library::add_cell: duplicate cell " +
                                cell.name);
  cells_.push_back(std::move(cell));
  return it->second;
}

CellId Library::cell_id(const std::string& cell_name) const {
  auto it = by_name_.find(cell_name);
  if (it == by_name_.end())
    throw std::out_of_range("Library::cell_id: unknown cell " + cell_name);
  return it->second;
}

namespace {

void write_lut(std::ostream& os, const Lut& lut) {
  os << "lut " << lut.slew_index().size() << ' ' << lut.load_index().size()
     << '\n';
  for (double v : lut.slew_index()) os << v << ' ';
  os << '\n';
  for (double v : lut.load_index()) os << v << ' ';
  os << '\n';
  for (double v : lut.values()) os << v << ' ';
  os << '\n';
}

Lut read_lut(std::istream& is) {
  std::string tag;
  std::size_t ni = 0;
  std::size_t nj = 0;
  is >> tag >> ni >> nj;
  if (tag != "lut") throw std::runtime_error("Library: expected 'lut' tag");
  std::vector<double> idx1(ni);
  std::vector<double> idx2(nj);
  for (auto& v : idx1) is >> v;
  for (auto& v : idx2) is >> v;
  std::size_t nvals = ni == 0 ? 1 : ni * std::max<std::size_t>(nj, 1);
  std::vector<double> vals(nvals);
  for (auto& v : vals) is >> v;
  if (!is) throw std::runtime_error("Library: truncated lut");
  if (ni == 0) return Lut::scalar(vals[0]);
  if (nj == 0) return Lut::table1d(std::move(idx1), std::move(vals));
  return Lut::table2d(std::move(idx1), std::move(idx2), std::move(vals));
}

}  // namespace

std::size_t Library::write(std::ostream& os) const {
  std::ostringstream buf;
  buf.precision(9);
  buf << "library " << name_ << ' ' << cells_.size() << '\n';
  for (const auto& c : cells_) {
    buf << "cell " << c.name << ' ' << c.ports.size() << ' ' << c.arcs.size()
        << ' ' << (c.is_sequential ? 1 : 0) << '\n';
    for (const auto& p : c.ports) {
      buf << "port " << p.name << ' '
          << (p.dir == PortDir::kInput ? "in" : "out") << ' ' << p.cap_ff
          << ' ' << (p.is_clock ? 1 : 0) << '\n';
    }
    for (const auto& a : c.arcs) {
      buf << "arc " << a.from_port << ' ' << a.to_port << ' '
          << static_cast<int>(a.kind) << ' ' << static_cast<int>(a.sense)
          << '\n';
      for (unsigned el = 0; el < kNumEl; ++el)
        for (unsigned rf = 0; rf < kNumRf; ++rf) write_lut(buf, a.delay(el, rf));
      for (unsigned el = 0; el < kNumEl; ++el)
        for (unsigned rf = 0; rf < kNumRf; ++rf)
          write_lut(buf, a.out_slew(el, rf));
    }
  }
  const std::string s = buf.str();
  os << s;
  return s.size();
}

Library Library::read(std::istream& is) {
  std::string tag;
  std::string name;
  std::size_t ncells = 0;
  is >> tag >> name >> ncells;
  if (tag != "library")
    throw std::runtime_error("Library: expected 'library' tag");
  Library lib(name);
  for (std::size_t ci = 0; ci < ncells; ++ci) {
    std::size_t nports = 0;
    std::size_t narcs = 0;
    int seq = 0;
    Cell cell;
    is >> tag >> cell.name >> nports >> narcs >> seq;
    if (tag != "cell") throw std::runtime_error("Library: expected 'cell'");
    cell.is_sequential = seq != 0;
    cell.ports.resize(nports);
    for (auto& p : cell.ports) {
      std::string dir;
      int clk = 0;
      is >> tag >> p.name >> dir >> p.cap_ff >> clk;
      if (tag != "port") throw std::runtime_error("Library: expected 'port'");
      p.dir = dir == "in" ? PortDir::kInput : PortDir::kOutput;
      p.is_clock = clk != 0;
    }
    cell.arcs.resize(narcs);
    for (auto& a : cell.arcs) {
      int kind = 0;
      int sense = 0;
      is >> tag >> a.from_port >> a.to_port >> kind >> sense;
      if (tag != "arc") throw std::runtime_error("Library: expected 'arc'");
      a.kind = static_cast<ArcKind>(kind);
      a.sense = static_cast<ArcSense>(sense);
      for (unsigned el = 0; el < kNumEl; ++el)
        for (unsigned rf = 0; rf < kNumRf; ++rf) a.delay(el, rf) = read_lut(is);
      for (unsigned el = 0; el < kNumEl; ++el)
        for (unsigned rf = 0; rf < kNumRf; ++rf)
          a.out_slew(el, rf) = read_lut(is);
    }
    lib.add_cell(std::move(cell));
  }
  return lib;
}

std::size_t Library::serialized_size() const {
  std::ostringstream os;
  return write(os);
}

}  // namespace tmm
