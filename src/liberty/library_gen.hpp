#pragma once
// Parametric NLDM library generator.
//
// The TAU 2016/2017 contests ship proprietary early/late Liberty files;
// we substitute a generated library whose delay/slew surfaces follow the
// canonical NLDM shape: delay grows affinely in input slew and load with
// a mild saturating nonlinearity (so that LUT interpolation error — the
// quantity the timing-sensitivity metric measures — is realistic and
// non-zero), early tables are derated versions of late tables, and
// rise/fall are slightly asymmetric.

#include <string_view>

#include "liberty/library.hpp"
#include "util/rng.hpp"

namespace tmm {

struct LibraryGenConfig {
  /// Slew index grid in ps and load index grid in fF for generated LUTs.
  std::vector<double> slew_grid{1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 120.0};
  std::vector<double> load_grid{0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  /// Early tables are late tables scaled by this factor (< 1).
  double early_derate = 0.88;
  /// Fall transitions are rise transitions scaled by this factor.
  double fall_factor = 0.94;
  /// Relative strength of the saturating nonlinear term (0 = bilinear).
  double nonlinearity = 0.18;
  std::uint64_t seed = 42;
};

/// Analytic "silicon" a generated cell models. Exposed so tests can check
/// that LUT interpolation reproduces the analytic surface within
/// tolerance and so the characterizer can resample at arbitrary points.
struct DriveModel {
  double intrinsic_ps = 10.0;   ///< zero-load zero-slew delay
  double slew_coef = 0.12;      ///< ps of delay per ps of input slew
  double res_kohm = 1.8;        ///< drive resistance (ps per fF)
  double nonlin = 0.18;         ///< saturating cross-term strength
  double out_slew_base = 4.0;   ///< intrinsic output slew (ps)
  double out_slew_res = 1.1;    ///< output slew per fF of load
  double out_slew_in = 0.10;    ///< output slew per ps of input slew

  double delay(double slew_ps, double load_ff) const;
  double out_slew(double slew_ps, double load_ff) const;
};

/// Build the default synthetic standard-cell library:
/// INV/BUF/NAND2/NOR2/AND2/OR2/XOR2 in several drive strengths,
/// clock buffers, and a positive-edge D flip-flop with setup/hold arcs.
Library generate_library(const LibraryGenConfig& cfg = {});

/// Canonical library name for a generator seed. The default seed keeps
/// the historical name "tmm_nldm45" so existing design files stay
/// readable; other seeds append "_s<seed>" so a design serialized
/// against a reseeded library can never be silently re-timed against
/// the wrong tables (read_design checks the name).
std::string library_name_for_seed(std::uint64_t seed);

/// Inverse of library_name_for_seed: recover a generator config whose
/// generate_library() output carries `name`. Returns false for names
/// this generator never produces.
bool library_config_for_name(std::string_view name, LibraryGenConfig* cfg);

/// Specification of an on-demand K-input combinational cell synthesized
/// for a BLIF `.names` SOP node (frontend tech mapping). The cover hash
/// seeds the drive-model parameters and the per-input senses come from
/// cover unateness, so the same cover under the same library seed always
/// yields the byte-identical cell — and, because both are encoded in the
/// cell *name*, the cell can be re-synthesized from the name alone when
/// a previously imported design file is re-read.
struct NamesCellSpec {
  std::size_t num_inputs = 0;
  std::uint64_t cover_hash = 0;       ///< canonical-SOP FNV-1a hash
  std::vector<ArcSense> senses;       ///< one per input
};

/// "NK<K>_<senses>_<hash16>" with one 'p'/'n'/'x' sense letter per input
/// (e.g. "NK2_pn_00a1b2c3d4e5f607"); zero-input constants are "NK0_<hash16>".
std::string names_cell_name(const NamesCellSpec& spec);

/// Parse a names_cell_name back into its spec. Returns false when
/// `name` does not follow the NK pattern.
bool parse_names_cell_name(std::string_view name, NamesCellSpec* spec);

/// Deterministically synthesize the cell for `spec` under `cfg`: ports
/// I0..I<K-1> + Y, one combinational arc per input with the spec'd
/// sense, surfaces drawn from a generator seeded by (hash, cfg.seed).
Cell synthesize_names_cell(const NamesCellSpec& spec,
                           const LibraryGenConfig& cfg);

/// Add the cell for `spec` to `lib` unless it already exists; returns
/// its id either way.
CellId ensure_names_cell(Library& lib, const NamesCellSpec& spec,
                         const LibraryGenConfig& cfg);

/// Characterize a DriveModel into an ElRf<Lut> pair (delay, out_slew)
/// over the given grids. Used by the library generator and by tests.
void characterize(const DriveModel& model, const LibraryGenConfig& cfg,
                  ElRf<Lut>& delay_out, ElRf<Lut>& slew_out);

}  // namespace tmm
