#pragma once
// Parametric NLDM library generator.
//
// The TAU 2016/2017 contests ship proprietary early/late Liberty files;
// we substitute a generated library whose delay/slew surfaces follow the
// canonical NLDM shape: delay grows affinely in input slew and load with
// a mild saturating nonlinearity (so that LUT interpolation error — the
// quantity the timing-sensitivity metric measures — is realistic and
// non-zero), early tables are derated versions of late tables, and
// rise/fall are slightly asymmetric.

#include "liberty/library.hpp"
#include "util/rng.hpp"

namespace tmm {

struct LibraryGenConfig {
  /// Slew index grid in ps and load index grid in fF for generated LUTs.
  std::vector<double> slew_grid{1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 120.0};
  std::vector<double> load_grid{0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  /// Early tables are late tables scaled by this factor (< 1).
  double early_derate = 0.88;
  /// Fall transitions are rise transitions scaled by this factor.
  double fall_factor = 0.94;
  /// Relative strength of the saturating nonlinear term (0 = bilinear).
  double nonlinearity = 0.18;
  std::uint64_t seed = 42;
};

/// Analytic "silicon" a generated cell models. Exposed so tests can check
/// that LUT interpolation reproduces the analytic surface within
/// tolerance and so the characterizer can resample at arbitrary points.
struct DriveModel {
  double intrinsic_ps = 10.0;   ///< zero-load zero-slew delay
  double slew_coef = 0.12;      ///< ps of delay per ps of input slew
  double res_kohm = 1.8;        ///< drive resistance (ps per fF)
  double nonlin = 0.18;         ///< saturating cross-term strength
  double out_slew_base = 4.0;   ///< intrinsic output slew (ps)
  double out_slew_res = 1.1;    ///< output slew per fF of load
  double out_slew_in = 0.10;    ///< output slew per ps of input slew

  double delay(double slew_ps, double load_ff) const;
  double out_slew(double slew_ps, double load_ff) const;
};

/// Build the default synthetic standard-cell library:
/// INV/BUF/NAND2/NOR2/AND2/OR2/XOR2 in several drive strengths,
/// clock buffers, and a positive-edge D flip-flop with setup/hold arcs.
Library generate_library(const LibraryGenConfig& cfg = {});

/// Characterize a DriveModel into an ElRf<Lut> pair (delay, out_slew)
/// over the given grids. Used by the library generator and by tests.
void characterize(const DriveModel& model, const LibraryGenConfig& cfg,
                  ElRf<Lut>& delay_out, ElRf<Lut>& slew_out);

}  // namespace tmm
