#pragma once
// Serving-artifact invariant checks (S* rules): packed `.tmb` model
// images and registry directories.
//
// The loader (serve/tmb.cpp) already rejects corrupt images, but it
// throws on the *first* problem it meets. The linter instead walks the
// record sections standalone and reports *every* violation it can
// reach — in particular every LUT record whose [off, off+need) slice
// escapes the double arena (S002), the corruption class a fuzzer or a
// bad pack most plausibly produces — before handing a loadable model to
// the regular graph/model rules.
//
// Rules:
//   S001  image unreadable / structurally corrupt (bad magic, version,
//         CRC, truncated section, implausible counts)
//   S002  LUT record points outside the double arena
//   S003  two `.tmb` files in a registry directory carry the same
//         design name (the registry would serve only one of them)

#include <string>

#include "analysis/diagnostics.hpp"

namespace tmm::analysis {

/// Lint one packed model image (header + payload bytes). `source` is
/// the location context (file path). On a clean image this falls
/// through to lint_model() on the unpacked model, so G/B/L/M findings
/// ride along.
LintReport lint_tmb_image(const std::string& image,
                          const std::string& source = "<tmb>");

/// Read `path` (S001 when unreadable) and lint the image.
LintReport lint_tmb_file(const std::string& path);

/// Lint every `*.tmb` file of a registry directory (sorted, so reports
/// are deterministic), plus the cross-file S003 duplicate-name check.
LintReport lint_registry_dir(const std::string& dir);

}  // namespace tmm::analysis
