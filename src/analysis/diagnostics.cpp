#include "analysis/diagnostics.hpp"

#include <utility>

namespace tmm::analysis {

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out = "[";
  out += severity_name(severity);
  out += "] ";
  out += rule;
  if (!location.empty()) {
    out += " @ ";
    out += location;
  }
  out += ": ";
  out += message;
  if (!fix_hint.empty()) {
    out += " (hint: ";
    out += fix_hint;
    out += ")";
  }
  return out;
}

void LintReport::add(std::string rule_id, Severity severity,
                     std::string location, std::string message,
                     std::string fix_hint) {
  Diagnostic d;
  d.rule = std::move(rule_id);
  d.severity = severity;
  d.location = std::move(location);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  diags_.push_back(std::move(d));
}

void LintReport::merge(LintReport other) {
  diags_.insert(diags_.end(),
                std::make_move_iterator(other.diags_.begin()),
                std::make_move_iterator(other.diags_.end()));
}

std::size_t LintReport::errors() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == Severity::kError) ++n;
  return n;
}

std::size_t LintReport::warnings() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == Severity::kWarning) ++n;
  return n;
}

std::size_t LintReport::count(std::string_view rule_id) const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_)
    if (d.rule == rule_id) ++n;
  return n;
}

std::string LintReport::to_string() const {
  std::string out;
  for (const auto& d : diags_) {
    out += d.to_string();
    out += '\n';
  }
  out += std::to_string(errors());
  out += " error(s), ";
  out += std::to_string(warnings());
  out += " warning(s)\n";
  return out;
}

}  // namespace tmm::analysis
