#include "analysis/model_lint.hpp"

#include <string>

namespace tmm::analysis {

namespace {

/// True when any corner surface of the delay payload is 1-D or scalar —
/// the shape only re-characterization produces (library arcs always
/// carry full 2-D slew x load surfaces).
bool has_recharacterized_shape(const ElRf<Lut>& tables) {
  for (unsigned el = 0; el < kNumEl; ++el)
    for (unsigned rf = 0; rf < kNumRf; ++rf)
      if (!tables(el, rf).is_2d()) return true;
  return false;
}

void check_baked_derate(const TimingGraph& g, LintReport& report) {
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead) continue;
    const std::string loc = "arc " + g.node(arc.from).name + " -> " +
                            g.node(arc.to).name;
    if (arc.kind == GraphArcKind::kWire) {
      if (arc.baked_derate)
        report.add(rule::kBakedDerate, Severity::kWarning, loc,
                   "wire arc carries baked_derate; derates never apply to "
                   "wire arcs",
                   "clear the flag — it suggests a mixed-up arc record");
      continue;
    }
    if (arc.delay != nullptr && has_recharacterized_shape(*arc.delay) &&
        !arc.baked_derate)
      report.add(rule::kBakedDerate, Severity::kError, loc,
                 "re-characterized (1-D/scalar surface) merged arc is not "
                 "marked baked_derate; the engine would derate it twice",
                 "materialize_chain/compose must set baked_derate on "
                 "merged arcs");
  }
}

void check_boundary_retention(const MacroModel& model, const Design& design,
                              LintReport& report) {
  const TimingGraph& g = model.graph;
  const auto side = [&](const std::vector<PinId>& want,
                        const std::vector<NodeId>& got, const char* name) {
    if (got.size() != want.size()) {
      report.add(rule::kBoundaryLost, Severity::kError,
                 std::string(name) + " list",
                 "design has " + std::to_string(want.size()) + " " + name +
                     "s but the model retains " + std::to_string(got.size()),
                 "ILM capture must keep every boundary pin");
      return;
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      const std::string loc =
          std::string(name) + " ordinal " + std::to_string(i);
      if (got[i] == kInvalidId || got[i] >= g.num_nodes() ||
          g.node(got[i]).dead) {
        report.add(rule::kBoundaryLost, Severity::kError, loc,
                   "boundary pin " + design.pin_name(want[i]) +
                       " of the design is missing or dead in the model",
                   "boundary pins must never be merged away");
        continue;
      }
      const std::string& got_name = g.node(got[i]).name;
      if (got_name != design.pin_name(want[i]))
        report.add(rule::kBoundaryLost, Severity::kError, loc,
                   "model retains pin '" + got_name +
                       "' where the design has '" +
                       design.pin_name(want[i]) + "'",
                   "ordinals shifted during capture; boundary order must "
                   "be stable");
    }
  };
  side(design.primary_inputs(), g.primary_inputs(), "PI");
  side(design.primary_outputs(), g.primary_outputs(), "PO");
}

}  // namespace

LintReport lint_model(const MacroModel& model, const GraphLintOptions& opt) {
  LintReport report = lint_graph(model.graph, opt);
  check_baked_derate(model.graph, report);
  return report;
}

LintReport lint_model_against(const MacroModel& model, const Design& design,
                              const GraphLintOptions& opt) {
  LintReport report = lint_model(model, opt);
  check_boundary_retention(model, design, report);
  return report;
}

}  // namespace tmm::analysis
