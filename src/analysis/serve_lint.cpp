#include "analysis/serve_lint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "analysis/model_lint.hpp"
#include "fault/fault.hpp"
#include "serve/tmb.hpp"

namespace tmm::analysis {

namespace {

/// Minimal bounds-checked little-endian cursor over the payload. The
/// linter re-walks the record layout (serve/tmb.cpp is the format
/// owner) so it can keep going past the first bad LUT record instead of
/// throwing like the loader does; the layout is frozen by kTmbVersion.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool skip(std::uint64_t n) {
    if (n > size_ - pos_) return false;
    pos_ += n;
    return true;
  }
  std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  bool raw(void* out, std::size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Fixed record strides of format version 1 (see pack_model).
constexpr std::uint64_t kNodeBytes = 8 * 4 + 8;
constexpr std::uint64_t kArcBytes = 7 * 4 + 8;
constexpr std::uint64_t kCheckBytes = 4 * 4;
constexpr std::uint64_t kMaxRecords = 100'000'000;

void add_image_error(LintReport& report, const std::string& source,
                     std::string message) {
  report.add(rule::kTmbImage, Severity::kError, source, std::move(message),
             "re-pack the model with `tmm pack`; a torn write cannot "
             "produce a valid image (writes are atomic)");
}

/// Walk every LUT record and report each one whose slice escapes the
/// arena. Returns false when anything was reported: a truncated walk
/// (S001) or one or more out-of-bounds records (S002).
bool lint_arena_bounds(const std::string& image, const std::string& source,
                       LintReport& report) {
  Cursor c(image.data() + serve::kTmbHeaderBytes,
           image.size() - serve::kTmbHeaderBytes);
  std::uint32_t name_len = 0;
  if (!c.u32(name_len) || !c.skip(name_len)) {
    add_image_error(report, source, "truncated design name");
    return false;
  }
  std::uint32_t nn = 0, na = 0, nc = 0, npo = 0, strtab_len = 0, ntab = 0;
  std::uint64_t narena = 0;
  if (!c.u32(nn) || !c.u32(na) || !c.u32(nc) || !c.u32(npo) ||
      !c.u32(strtab_len) || !c.u32(ntab) || !c.u64(narena)) {
    add_image_error(report, source, "truncated section-count header");
    return false;
  }
  if (nn > kMaxRecords || na > kMaxRecords || nc > kMaxRecords ||
      npo > kMaxRecords || ntab > kMaxRecords || narena > kMaxRecords) {
    add_image_error(report, source, "implausible record count in header");
    return false;
  }
  if (!c.skip(nn * kNodeBytes) || !c.skip(npo * 4ull) ||
      !c.skip(na * kArcBytes) || !c.skip(nc * kCheckBytes)) {
    add_image_error(report, source, "truncated record section");
    return false;
  }
  bool in_bounds = true;
  for (std::uint64_t i = 0; i < ntab; ++i) {
    std::uint32_t ni = 0, nj = 0;
    std::uint64_t off = 0;
    if (!c.u32(ni) || !c.u32(nj) || !c.u64(off)) {
      add_image_error(report, source, "truncated table section");
      return false;
    }
    const std::uint64_t nvals =
        ni == 0 ? 1
                : static_cast<std::uint64_t>(ni) * std::max<std::uint64_t>(nj, 1);
    const std::uint64_t need = ni + nj + nvals;
    if (off > narena || need > narena - off) {
      in_bounds = false;
      report.add(rule::kTmbArena, Severity::kError,
                 source + " table " + std::to_string(i),
                 "lut record [" + std::to_string(off) + ", " +
                     std::to_string(off + need) + ") escapes the " +
                     std::to_string(narena) + "-double arena",
                 "the image was not produced by pack_model; re-pack "
                 "from the source .macro");
    }
  }
  return in_bounds;
}

}  // namespace

LintReport lint_tmb_image(const std::string& image,
                          const std::string& source) {
  LintReport report;

  // Header first: without a matching magic/version/CRC the payload
  // bytes mean nothing and the record walk would chase noise.
  if (image.size() < serve::kTmbHeaderBytes) {
    add_image_error(report, source, "file shorter than the tmb header");
    return report;
  }
  if (std::memcmp(image.data(), serve::kTmbMagic,
                  sizeof serve::kTmbMagic) != 0) {
    add_image_error(report, source, "not a tmb model (bad magic)");
    return report;
  }
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint32_t want_crc = 0;
  std::memcpy(&version, image.data() + 4, 4);
  std::memcpy(&payload_size, image.data() + 8, 8);
  std::memcpy(&want_crc, image.data() + 16, 4);
  if (version != serve::kTmbVersion) {
    add_image_error(report, source,
                    "unsupported tmb version " + std::to_string(version));
    return report;
  }
  if (payload_size != image.size() - serve::kTmbHeaderBytes) {
    add_image_error(report, source, "payload size mismatch (truncated file?)");
    return report;
  }
  if (serve::crc32(image.data() + serve::kTmbHeaderBytes, payload_size) !=
      want_crc) {
    add_image_error(report, source,
                    "payload checksum mismatch (corrupt or torn file)");
    return report;
  }

  // Exhaustive arena-bounds pass (S002), then the loader + model rules.
  // A bounds violation means unpack_model would throw on the same
  // record, so stop here rather than report the failure twice.
  if (!lint_arena_bounds(image, source, report)) return report;

  try {
    const MacroModel model = serve::unpack_model(image, source);
    report.merge(lint_model(model));
  } catch (const fault::FlowError& e) {
    add_image_error(report, source, e.message());
  }
  return report;
}

LintReport lint_tmb_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    LintReport report;
    report.add(rule::kTmbImage, Severity::kError, path, "cannot open file",
               "check the path and permissions");
    return report;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return lint_tmb_image(buf.str(), path);
}

LintReport lint_registry_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  LintReport report;
  std::error_code ec;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tmb")
      files.push_back(entry.path().string());
  }
  if (ec) {
    report.add(rule::kTmbImage, Severity::kError, dir,
               "cannot read directory: " + ec.message(),
               "check the path and permissions");
    return report;
  }
  std::sort(files.begin(), files.end());

  // design name -> first file that claimed it (S003).
  std::map<std::string, std::string> names;
  for (const std::string& path : files) {
    LintReport file_report = lint_tmb_file(path);
    const bool loadable = file_report.count(rule::kTmbImage) == 0 &&
                          file_report.count(rule::kTmbArena) == 0;
    report.merge(std::move(file_report));
    if (!loadable) continue;
    // Cheap name probe: the design name sits right after the header.
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string image = buf.str();
    Cursor c(image.data() + serve::kTmbHeaderBytes,
             image.size() - serve::kTmbHeaderBytes);
    std::uint32_t name_len = 0;
    if (!c.u32(name_len) || name_len > c.remaining()) continue;
    const std::string name =
        image.substr(serve::kTmbHeaderBytes + 4, name_len);
    const auto [it, inserted] = names.emplace(name, path);
    if (!inserted)
      report.add(rule::kRegistryDupName, Severity::kError, path,
                 "design name '" + name + "' already provided by " +
                     it->second + " (the registry keeps only one)",
                 "rename or remove one of the conflicting models");
  }
  return report;
}

}  // namespace tmm::analysis
