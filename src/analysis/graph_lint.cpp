#include "analysis/graph_lint.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tmm::analysis {

namespace {

/// Non-unate merged chains use +/-1e290 sentinels for unreachable
/// transitions; those are legitimate table entries, not corruption.
constexpr double kSentinelMagnitude = 1e200;

std::string node_ref(const TimingGraph& g, NodeId n) {
  std::string ref = "#";
  ref += std::to_string(n);
  if (n >= g.num_nodes()) {
    ref += " (out of range)";
    return ref;
  }
  const std::string& name = g.node(n).name;
  return name.empty() ? ref : name;
}

std::string pin_loc(const TimingGraph& g, NodeId n) {
  return "pin " + node_ref(g, n);
}

std::string arc_loc(const TimingGraph& g, const GraphArc& a) {
  return "arc " + node_ref(g, a.from) + " -> " + node_ref(g, a.to);
}

std::string check_loc(const TimingGraph& g, const CheckArc& c) {
  return "check " + node_ref(g, c.clock) + " / " + node_ref(g, c.data);
}

bool strictly_increasing(std::span<const double> axis) {
  for (std::size_t i = 1; i < axis.size(); ++i)
    if (!(axis[i] > axis[i - 1])) return false;
  return true;
}

bool all_finite(std::span<const double> v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

/// Structural pass: every live arc/check must reference in-range node
/// ids. Returns false when any id is out of range — the remaining rules
/// would index out of bounds and are skipped.
bool check_id_ranges(const TimingGraph& g, LintReport& report) {
  bool ok = true;
  const std::size_t n = g.num_nodes();
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead) continue;
    if (arc.from >= n || arc.to >= n) {
      report.add(rule::kDanglingArc, Severity::kError, arc_loc(g, arc),
                 "live arc references an out-of-range node id",
                 "kill the arc or rebuild the graph");
      ok = false;
    }
  }
  for (std::uint32_t c = 0; c < g.num_checks(); ++c) {
    const CheckArc& chk = g.check(c);
    if (chk.dead) continue;
    if (chk.clock >= n || chk.data >= n) {
      report.add(rule::kDanglingCheck, Severity::kError, check_loc(g, chk),
                 "live check references an out-of-range node id",
                 "kill the check or rebuild the graph");
      ok = false;
    }
  }
  return ok;
}

void check_cycles(const TimingGraph& g, LintReport& report) {
  const std::vector<NodeId> cycle = find_cycle(g);
  if (cycle.empty()) return;
  std::string msg = "combinational cycle: ";
  for (NodeId u : cycle) {
    msg += node_ref(g, u);
    msg += " -> ";
  }
  msg += node_ref(g, cycle.front());
  report.add(rule::kCycle, Severity::kError, pin_loc(g, cycle.front()),
             std::move(msg),
             "a merge or manual edit spliced an arc against topological "
             "order; remove one arc of the cycle");
}

void check_dead_references(const TimingGraph& g, LintReport& report) {
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead) continue;
    if (g.node(arc.from).dead || g.node(arc.to).dead)
      report.add(rule::kDanglingArc, Severity::kError, arc_loc(g, arc),
                 "live arc touches a dead node",
                 "kill_node marks incident arcs dead; arcs added after the "
                 "kill must target live nodes");
    if (arc.kind == GraphArcKind::kCell &&
        (arc.delay == nullptr || arc.out_slew == nullptr))
      report.add(rule::kNullTables, Severity::kError, arc_loc(g, arc),
                 "live cell arc has no delay/slew tables",
                 "materialize the merged chain or kill the arc");
  }
  for (std::uint32_t c = 0; c < g.num_checks(); ++c) {
    const CheckArc& chk = g.check(c);
    if (chk.dead) continue;
    if (g.node(chk.clock).dead || g.node(chk.data).dead)
      report.add(rule::kDanglingCheck, Severity::kError, check_loc(g, chk),
                 "live check references a dead clock or data pin",
                 "kill the check together with its flip-flop pins");
    if (chk.guard == nullptr)
      report.add(rule::kNullTables, Severity::kError, check_loc(g, chk),
                 "live check has no guard-time table",
                 "attach the setup/hold table or kill the check");
  }
}

void check_po_load_refs(const TimingGraph& g, LintReport& report) {
  const std::size_t num_pos = g.primary_outputs().size();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const GraphNode& node = g.node(n);
    if (node.dead) continue;
    for (std::uint32_t po : node.attached_po_loads) {
      if (po >= num_pos || g.primary_outputs()[po] == kInvalidId)
        report.add(rule::kPoLoadRange, Severity::kError, pin_loc(g, n),
                   "attached_po_loads references PO ordinal " +
                       std::to_string(po) + " but the graph has " +
                       std::to_string(num_pos) + " primary outputs",
                   "rebuild attached_po_loads after changing the boundary");
    }
  }
}

void check_boundary_side(const TimingGraph& g, LintReport& report,
                         const std::vector<NodeId>& ports, NodeRole role,
                         const char* side) {
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const std::string loc =
        std::string(side) + " ordinal " + std::to_string(i);
    const NodeId p = ports[i];
    if (p == kInvalidId) {
      report.add(rule::kBoundaryOrdinal, Severity::kError, loc,
                 "gap in the boundary ordinal list: no pin registered",
                 "assign contiguous port ordinals starting at 0");
      continue;
    }
    if (p >= g.num_nodes()) {
      report.add(rule::kBoundaryOrdinal, Severity::kError, loc,
                 "boundary list references an out-of-range node id", "");
      continue;
    }
    const GraphNode& node = g.node(p);
    if (node.dead)
      report.add(rule::kBoundaryOrdinal, Severity::kError, loc,
                 "boundary pin " + node_ref(g, p) + " is dead",
                 "boundary pins must never be merged away");
    if (node.role != role)
      report.add(rule::kBoundaryOrdinal, Severity::kError, loc,
                 "pin " + node_ref(g, p) +
                     " is in the boundary list but does not carry the " +
                     side + " role",
                 "set_primary_input/output must stay in sync with roles");
    else if (node.port_ordinal != i)
      report.add(rule::kBoundaryOrdinal, Severity::kError, loc,
                 "pin " + node_ref(g, p) + " carries port_ordinal " +
                     std::to_string(node.port_ordinal) +
                     " but is registered at ordinal " + std::to_string(i),
                 "duplicate or stale ordinal registration");
  }
  // Reverse direction: every live node carrying the role must be the
  // registered owner of its ordinal (catches duplicates that overwrote
  // the list slot).
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const GraphNode& node = g.node(n);
    if (node.dead || node.role != role) continue;
    if (node.port_ordinal >= ports.size() ||
        ports[node.port_ordinal] != n)
      report.add(rule::kBoundaryOrdinal, Severity::kError, pin_loc(g, n),
                 std::string("duplicate or unregistered ") + side +
                     " ordinal " + std::to_string(node.port_ordinal),
                 "two pins claim the same ordinal, or the list was not "
                 "updated");
  }
}

void check_clock_reachability(const TimingGraph& g, LintReport& report) {
  bool has_ff_clock = false;
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    if (!g.node(n).dead && g.node(n).is_ff_clock) has_ff_clock = true;
  if (!has_ff_clock) return;

  const NodeId root = g.clock_root();
  if (root == kInvalidId || root >= g.num_nodes() || g.node(root).dead) {
    report.add(rule::kClockReach, Severity::kError, "clock root",
               "graph has flip-flop clock pins but no live clock root",
               "register the clock source with set_primary_input(..., "
               "is_clock=true)");
    return;
  }
  std::vector<bool> reach(g.num_nodes(), false);
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (reach[u]) continue;
    reach[u] = true;
    if (g.node(u).is_ff_clock) continue;  // launch arcs leave the network
    for (ArcId a : g.fanout(u)) {
      if (g.arc(a).is_launch) continue;
      const NodeId v = g.arc(a).to;
      if (!g.node(v).dead && !reach[v]) stack.push_back(v);
    }
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const GraphNode& node = g.node(n);
    if (node.dead || !node.is_ff_clock || reach[n]) continue;
    report.add(rule::kClockReach, Severity::kError, pin_loc(g, n),
               "flip-flop clock pin is unreachable from the clock root",
               "a merge or ILM capture removed the clock path; keep clock "
               "network pins feeding retained flops");
  }
}

void lint_lut(const Lut& lut, const std::string& loc, LintReport& report) {
  if (!strictly_increasing(lut.slew_index()))
    report.add(rule::kLutIndexOrder, Severity::kError, loc,
               "slew index vector is not strictly increasing",
               "index selection must emit ascending axes");
  if (!strictly_increasing(lut.load_index()))
    report.add(rule::kLutIndexOrder, Severity::kError, loc,
               "load index vector is not strictly increasing",
               "index selection must emit ascending axes");
  if (!all_finite(lut.slew_index()) || !all_finite(lut.load_index()) ||
      !all_finite(lut.values()))
    report.add(rule::kLutNonFinite, Severity::kError, loc,
               "table contains NaN or Inf entries",
               "re-characterization produced an invalid sample; check the "
               "composed chain and index selection inputs");
  const std::size_t expect =
      lut.is_scalar()
          ? 1
          : lut.slew_index().size() *
                (lut.is_2d() ? lut.load_index().size() : 1);
  if (lut.values().size() != expect)
    report.add(rule::kLutShape, Severity::kError, loc,
               "value array has " + std::to_string(lut.values().size()) +
                   " entries but the index grid implies " +
                   std::to_string(expect),
               "table shape corrupted during (de)serialization or merge");
}

/// Gross delay-vs-load monotonicity of an owned (re-characterized) 2-D
/// delay surface: more load must not make the stage significantly
/// faster. One finding per surface keeps the report readable.
void lint_monotone(const Lut& lut, const std::string& loc,
                   const GraphLintOptions& opt, LintReport& report) {
  if (!lut.is_2d()) return;
  const std::size_t nl = lut.load_index().size();
  const auto vals = lut.values();
  if (vals.size() != lut.slew_index().size() * nl) return;  // L004 fired
  for (std::size_t i = 0; i < lut.slew_index().size(); ++i) {
    for (std::size_t j = 1; j < nl; ++j) {
      const double prev = vals[i * nl + j - 1];
      const double cur = vals[i * nl + j];
      if (!std::isfinite(prev) || !std::isfinite(cur)) return;
      if (std::abs(prev) >= kSentinelMagnitude ||
          std::abs(cur) >= kSentinelMagnitude)
        continue;
      const double tol =
          std::max(opt.mono_abs_tol_ps, opt.mono_rel_tol * std::abs(prev));
      if (cur < prev - tol) {
        report.add(rule::kLutNonMonotone, Severity::kWarning, loc,
                   "re-characterized delay decreases by " +
                       std::to_string(prev - cur) +
                       " ps when load grows (row " + std::to_string(i) +
                       ", column " + std::to_string(j) + ")",
                   "suspicious composite characterization; inspect the "
                   "merged chain sampling");
        return;
      }
    }
  }
}

void check_tables(const TimingGraph& g, const GraphLintOptions& opt,
                  LintReport& report) {
  // Deduplicate by surface pointer: merged models share tables between
  // arcs, and the diagnostics should not repeat per user.
  std::map<const ElRf<Lut>*, std::string> seen;
  auto visit = [&](const ElRf<Lut>* t, std::string loc, bool is_delay) {
    if (t == nullptr) return;
    if (!seen.emplace(t, loc).second) return;
    for (unsigned el = 0; el < kNumEl; ++el) {
      for (unsigned rf = 0; rf < kNumRf; ++rf) {
        const std::string surface_loc =
            loc + (el == kEarly ? " [early/" : " [late/") +
            (rf == kRise ? "rise]" : "fall]");
        lint_lut((*t)(el, rf), surface_loc, report);
        if (is_delay && opt.check_monotonicity && g.owns_tables(t))
          lint_monotone((*t)(el, rf), surface_loc, opt, report);
      }
    }
  };
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const GraphArc& arc = g.arc(a);
    if (arc.dead || arc.kind != GraphArcKind::kCell) continue;
    visit(arc.delay, "delay tables of " + arc_loc(g, arc), true);
    visit(arc.out_slew, "slew tables of " + arc_loc(g, arc), false);
  }
  for (std::uint32_t c = 0; c < g.num_checks(); ++c) {
    const CheckArc& chk = g.check(c);
    if (chk.dead) continue;
    visit(chk.guard, "guard tables of " + check_loc(g, chk), false);
  }
}

}  // namespace

LintReport lint_graph(const TimingGraph& g, const GraphLintOptions& opt) {
  LintReport report;
  // Out-of-range ids would make every other rule index out of bounds;
  // report them alone and stop.
  if (!check_id_ranges(g, report)) return report;
  check_cycles(g, report);
  check_dead_references(g, report);
  check_po_load_refs(g, report);
  check_boundary_side(g, report, g.primary_inputs(),
                      NodeRole::kPrimaryInput, "PI");
  check_boundary_side(g, report, g.primary_outputs(),
                      NodeRole::kPrimaryOutput, "PO");
  check_clock_reachability(g, report);
  check_tables(g, opt, report);
  return report;
}

void expect_clean(const TimingGraph& g, const GraphLintOptions& opt) {
  const LintReport report = lint_graph(g, opt);
  if (!report.clean())
    throw std::runtime_error("timing graph failed invariant check:\n" +
                             report.to_string());
}

}  // namespace tmm::analysis
