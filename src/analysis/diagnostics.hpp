#pragma once
// Structured diagnostics for the static invariant checker (tmm_lint).
//
// Every finding carries a stable rule id (catalogued in
// docs/ANALYSIS.md), a severity, a human-readable location inside the
// checked artifact, a message, and a fix hint. Reports from several
// passes compose with merge(); errors() gates pipeline validation and
// the `tmm lint` exit code.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tmm::analysis {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

std::string_view severity_name(Severity s) noexcept;

/// Stable rule identifiers. Prefixes: G = graph structure, B = boundary,
/// L = lookup tables, D = design/netlist, M = macro model, S = serving
/// artifacts (.tmb images, registry directories), F = frontend import
/// (elaborated BLIF/Verilog netlists, docs/FRONTEND.md).
namespace rule {
inline constexpr const char* kCycle = "G001";
inline constexpr const char* kDanglingArc = "G002";
inline constexpr const char* kDanglingCheck = "G003";
inline constexpr const char* kPoLoadRange = "G004";
inline constexpr const char* kNullTables = "G005";
inline constexpr const char* kBoundaryOrdinal = "B001";
inline constexpr const char* kClockReach = "B002";
inline constexpr const char* kLutNonFinite = "L001";
inline constexpr const char* kLutIndexOrder = "L002";
inline constexpr const char* kLutNonMonotone = "L003";
inline constexpr const char* kLutShape = "L004";
inline constexpr const char* kUnconnectedInput = "D001";
inline constexpr const char* kDriverMismatch = "D002";
inline constexpr const char* kUndrivenNet = "D003";
inline constexpr const char* kParasiticsArity = "D004";
inline constexpr const char* kBoundaryLost = "M001";
inline constexpr const char* kBakedDerate = "M002";
inline constexpr const char* kTmbImage = "S001";
inline constexpr const char* kTmbArena = "S002";
inline constexpr const char* kRegistryDupName = "S003";
inline constexpr const char* kIrUndrivenNet = "F001";
inline constexpr const char* kIrMultiDriven = "F002";
inline constexpr const char* kIrDanglingPin = "F003";
inline constexpr const char* kIrUnusedNet = "F004";
}  // namespace rule

struct Diagnostic {
  std::string rule;      ///< stable id, e.g. "G001"
  Severity severity = Severity::kError;
  std::string location;  ///< e.g. "pin u3/Y", "arc u1/Y -> u3/A"
  std::string message;
  std::string fix_hint;  ///< optional remediation advice

  /// "[error] G001 @ pin u3/Y: <message> (hint: <fix_hint>)"
  std::string to_string() const;
};

class LintReport {
 public:
  void add(std::string rule_id, Severity severity, std::string location,
           std::string message, std::string fix_hint = {});
  void merge(LintReport other);

  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  std::size_t size() const noexcept { return diags_.size(); }
  bool empty() const noexcept { return diags_.empty(); }

  std::size_t errors() const noexcept;
  std::size_t warnings() const noexcept;
  /// No error-severity findings (warnings/infos allowed).
  bool clean() const noexcept { return errors() == 0; }

  /// Number of diagnostics carrying the given rule id.
  std::size_t count(std::string_view rule_id) const noexcept;

  /// One line per diagnostic, plus a trailing summary line.
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace tmm::analysis
