#pragma once
// Rule-based invariant checker for timing graphs.
//
// The macro-modeling flow mutates graphs in place (ILM capture kills
// pins, merging splices re-characterized arcs), so a silent invariant
// violation — a cycle introduced by a bad merge, a live arc into a dead
// node, a NaN in a re-characterized surface — corrupts boundary timing
// without crashing. lint_graph() proves well-formedness statically and
// reports structured diagnostics instead of throwing, so it is safe to
// run on arbitrarily corrupted graphs.
//
// Rule catalogue: docs/ANALYSIS.md.

#include "analysis/diagnostics.hpp"
#include "sta/timing_graph.hpp"

namespace tmm::analysis {

struct GraphLintOptions {
  /// Run the L003 gross delay-vs-load monotonicity check over owned
  /// (re-characterized) tables.
  bool check_monotonicity = true;
  /// A backwards delay step is tolerated up to
  /// max(mono_abs_tol_ps, mono_rel_tol * |value|); larger steps fire
  /// L003.
  double mono_abs_tol_ps = 1.0;
  double mono_rel_tol = 0.05;
};

/// Run every graph rule (G*, B*, L*) and return the findings.
LintReport lint_graph(const TimingGraph& g, const GraphLintOptions& opt = {});

/// Test/assertion helper: throw std::runtime_error carrying the full
/// report when lint_graph() finds any error-severity diagnostic.
void expect_clean(const TimingGraph& g, const GraphLintOptions& opt = {});

}  // namespace tmm::analysis
