#include "analysis/design_lint.hpp"

#include <string>

namespace tmm::analysis {

LintReport lint_design(const Design& d) {
  LintReport report;
  for (PinId p = 0; p < d.num_pins(); ++p) {
    const Pin& pin = d.pin(p);
    if (pin.net == kInvalidId) {
      // Dangling gate outputs are tolerated (unused logic); dangling
      // inputs make timing undefined.
      if (!pin.is_driver && pin.gate != kInvalidId)
        report.add(rule::kUnconnectedInput, Severity::kError,
                   "pin " + d.pin_name(p),
                   "gate input pin is not connected to any net",
                   "connect the pin or remove the gate");
      continue;
    }
    if (pin.net >= d.num_nets()) {
      report.add(rule::kDriverMismatch, Severity::kError,
                 "pin " + d.pin_name(p),
                 "pin references an out-of-range net id", "");
      continue;
    }
    if (pin.is_driver && d.net(pin.net).driver != p)
      report.add(rule::kDriverMismatch, Severity::kError,
                 "pin " + d.pin_name(p),
                 "pin claims to drive net " + d.net(pin.net).name +
                     " but the net records a different driver",
                 "keep Pin::is_driver and Net::driver in sync");
  }
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const Net& net = d.net(n);
    if (net.driver == kInvalidId)
      report.add(rule::kUndrivenNet, Severity::kError, "net " + net.name,
                 "net has no driver", "every net needs a driving pin");
    if (net.sinks.size() != net.sink_res_kohm.size())
      report.add(rule::kParasiticsArity, Severity::kError,
                 "net " + net.name,
                 "net has " + std::to_string(net.sinks.size()) +
                     " sinks but " +
                     std::to_string(net.sink_res_kohm.size()) +
                     " sink resistances",
                 "parasitics must stay parallel to the sink list");
  }
  return report;
}

}  // namespace tmm::analysis
