#pragma once
// Macro-model-level invariant checks (M* rules) on top of the graph
// rules: boundary retention against the source design and baked-derate
// consistency of merged (re-characterized) arcs.

#include "analysis/diagnostics.hpp"
#include "analysis/graph_lint.hpp"
#include "macro/macro_model.hpp"
#include "netlist/design.hpp"

namespace tmm::analysis {

/// Graph rules on model.graph plus the model-only M* rules.
LintReport lint_model(const MacroModel& model,
                      const GraphLintOptions& opt = {});

/// lint_model() plus M001 boundary-retention checks against the design
/// the model was generated from: every PI/PO of the design must survive
/// in the model at the same ordinal with the same name.
LintReport lint_model_against(const MacroModel& model, const Design& design,
                              const GraphLintOptions& opt = {});

}  // namespace tmm::analysis
