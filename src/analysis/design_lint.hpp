#pragma once
// Netlist-level invariant checks (D* rules): the diagnostic counterpart
// of Design::validate(), extended with boundary/clock sanity. Unlike
// validate() it never throws — every violation becomes a Diagnostic, so
// `tmm lint` can report all problems of a corrupt design at once.

#include "analysis/diagnostics.hpp"
#include "netlist/design.hpp"

namespace tmm::analysis {

LintReport lint_design(const Design& d);

}  // namespace tmm::analysis
