#pragma once
// Timing sensitivity evaluation (Section 4.1, Fig. 5, Eq. 1-2).
//
// For each candidate pin A of an ILM graph: remove A (splice in the
// re-characterized composite arcs the macro generator would use),
// re-run timing under each of several random boundary-constraint sets,
// and average the relative change of boundary slew / arrival / required
// arrival / slack. TS == 0 means merging A is timing-free; TS > 0
// quantifies how much accuracy merging A costs.

#include <span>

#include "macro/merge.hpp"
#include "sta/constraints.hpp"

namespace tmm {

struct TsConfig {
  /// Number of random boundary-constraint sets (the |C| of Eq. 1).
  std::size_t num_constraint_sets = 3;
  ConstraintGenConfig constraint_gen;
  MergeConfig merge;
  bool cppr = true;
  /// Advanced timing mode under which sensitivities are evaluated (the
  /// framework's generality lever: TS adapts to the given delay model).
  AocvConfig aocv;
  std::uint64_t seed = 0x7153;
  /// Worker threads for the per-pin evaluation loop (pins are
  /// independent; results are deterministic regardless of the count).
  /// 0 = auto: TMM_THREADS when set, else the hardware concurrency
  /// (util::TaskPool::default_threads()). Each worker's scratch STA
  /// engine is itself serial — parallelism here is across pins.
  std::size_t threads = 1;
  /// Incremental per-pin path: one reusable scratch graph per worker
  /// (MergeDelta apply/undo) and worklist re-propagation over the dirty
  /// cone (Sta::run_incremental) instead of a graph copy + full merge +
  /// full propagation per pin. Results are bit-identical to the full
  /// path; automatically falls back to it (with a warning) when the ILM
  /// has pre-existing parallel duplicate arcs.
  bool incremental = true;
};

struct TsResult {
  /// TS per node (Eq. 1); exactly 0 for pins not evaluated.
  std::vector<double> ts;
  std::size_t evaluated_pins = 0;
  std::size_t skipped_unmergeable = 0;
  /// Degradation accounting (docs/ROBUSTNESS.md): pins whose per-pin
  /// re-analysis failed are conservatively scored fully sensitive
  /// (TS = 1, i.e. kept in the model) instead of aborting the design;
  /// constraint sets whose reference run failed are dropped from the
  /// |C| average. Either being nonzero marks the design `degraded`.
  std::size_t failed_pins = 0;
  std::size_t skipped_sets = 0;
  /// First failure diagnostic (empty when failed_pins + skipped_sets == 0).
  std::string first_failure;
  double eval_seconds = 0.0;
};

/// Evaluate TS for every node with candidates[n] == true. Pins that are
/// not legally mergeable are skipped (they are kept regardless, so their
/// sensitivity never matters). `ilm` must not contain owned tables yet
/// (i.e. be a fresh ILM), because evaluation copies it per pin.
TsResult evaluate_timing_sensitivity(const TimingGraph& ilm,
                                     const std::vector<bool>& candidates,
                                     const TsConfig& cfg);

/// Eq. 2 aggregation helper: mean relative difference of one boundary
/// quantity between two snapshots (exposed for tests).
double mean_relative_diff(std::span<const double> after,
                          std::span<const double> before);

}  // namespace tmm
