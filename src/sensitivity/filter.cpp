#include "sensitivity/filter.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sta/propagation.hpp"
#include "util/stats.hpp"

namespace tmm {

namespace {

// Metric handle resolved at namespace scope (the registry is a leaked
// function-local static, so this is static-init safe).
obs::Counter& g_filter_runs = obs::counter("filter.runs");

}  // namespace

bool is_last_stage(const TimingGraph& g, NodeId n) {
  const auto& node = g.node(n);
  if (!node.attached_po_loads.empty()) return true;
  for (ArcId a : g.fanout(n))
    if (g.node(g.arc(a).to).role == NodeRole::kPrimaryOutput) return true;
  return false;
}

FilterResult filter_insensitive_pins(const TimingGraph& g,
                                     const FilterConfig& cfg) {
  obs::Span span("filter.insensitive_pins");
  FilterResult out;
  const std::size_t n = g.num_nodes();
  const auto lo = propagate_slew_only(g, cfg.slew_min_ps, cfg.po_load_ff);
  const auto hi = propagate_slew_only(g, cfg.slew_max_ps, cfg.po_load_ff);

  out.sd.assign(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    if (g.node(u).dead) continue;
    if (std::isfinite(lo[u]) && std::isfinite(hi[u]))
      out.sd[u] = std::max(0.0, hi[u] - lo[u]);
  }

  // Standardize over live pins only, then scatter back.
  std::vector<double> live_sd;
  std::vector<NodeId> live_ids;
  for (NodeId u = 0; u < n; ++u) {
    if (g.node(u).dead) continue;
    live_sd.push_back(out.sd[u]);
    live_ids.push_back(u);
  }
  standardize(live_sd);
  out.sd_z.assign(n, 0.0);
  for (std::size_t i = 0; i < live_ids.size(); ++i)
    out.sd_z[live_ids[i]] = live_sd[i];

  out.remained.assign(n, false);
  out.live_pins = live_ids.size();
  for (NodeId u : live_ids) {
    const bool by_sd = out.sd_z[u] >= cfg.z_threshold;
    const bool protected_pin = is_last_stage(g, u);
    if (by_sd || protected_pin) {
      out.remained[u] = true;
      ++out.num_remained;
    }
  }
  // §4.2 economics: how many pins the filter spares the TS loop.
  g_filter_runs.add();
  obs::gauge("filter.live_pins").set(static_cast<double>(out.live_pins));
  obs::gauge("filter.remained").set(static_cast<double>(out.num_remained));
  obs::gauge("filter.filtered")
      .set(static_cast<double>(out.live_pins - out.num_remained));
  span.set_arg("remained", static_cast<double>(out.num_remained));
  return out;
}

}  // namespace tmm
