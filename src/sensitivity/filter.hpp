#pragma once
// Insensitive-pins filtering (Section 4.2, Fig. 7): propagate two slew
// values (t_min, t_max) from every PI; by the shielding effect the slew
// difference (SD) decays with logic depth, and pins with small SD have
// subtle influence on boundary timing. Pins whose *standardized* SD
// falls below a loose threshold are excluded from the expensive TS
// evaluation flow. Last-stage pins and pins electrically tied to output
// nets are always remained (their timing is load-variant).
//
// The threshold is deliberately imprecise: it only prunes the TS
// workload, so model quality does not depend on it (the paper reports
// never tuning it; neither do we).

#include <vector>

#include "sta/timing_graph.hpp"

namespace tmm {

struct FilterConfig {
  double slew_min_ps = 2.0;   ///< t_min propagated from the PIs
  double slew_max_ps = 60.0;  ///< t_max propagated from the PIs
  double po_load_ff = 4.0;
  /// Pins with standardized SD (z-score) below this are filtered out.
  double z_threshold = -0.25;
};

struct FilterResult {
  std::vector<double> sd;    ///< raw slew difference per node (ps)
  std::vector<double> sd_z;  ///< standardized SD
  /// true = remained (potentially sensitive, goes to TS evaluation).
  std::vector<bool> remained;
  std::size_t live_pins = 0;
  std::size_t num_remained = 0;
  double filtered_fraction() const {
    return live_pins == 0 ? 0.0
                          : 1.0 - static_cast<double>(num_remained) /
                                      static_cast<double>(live_pins);
  }
};

FilterResult filter_insensitive_pins(const TimingGraph& g,
                                     const FilterConfig& cfg = {});

/// True if the node directly drives a primary output or is electrically
/// tied to an output net (kept for output-load variance).
bool is_last_stage(const TimingGraph& g, NodeId n);

}  // namespace tmm
