#pragma once
// Training-data generation flow (Fig. 8): ILM capture -> insensitive
// pins filtering -> TS evaluation on the remained pins -> {0,1} labels.
//
// Label rule (Section 5.1): label(pin) = 1 iff TS > 0. In CPPR mode,
// multi-fan-out pins of the clock network are additionally labeled 1 —
// they are the potential common points of launch/capture clock paths,
// and merging them coarsens the pessimism credit.

#include "sensitivity/filter.hpp"
#include "sensitivity/ts_eval.hpp"

namespace tmm {

struct TrainingDataConfig {
  FilterConfig filter;
  TsConfig ts;
  /// Apply the CPPR labeling rule for clock-network branch pins.
  bool cppr_labels = true;
  /// TS at or below this is "zero" (floating-point noise floor; the
  /// paper's label rule is TS != 0).
  double ts_zero_epsilon = 1e-9;
};

struct SensitivityData {
  FilterResult filter;
  TsResult ts;
  /// Per-node {0,1} training label.
  std::vector<float> labels;
  std::size_t positives = 0;
};

/// Run the full Fig. 8 flow on an ILM graph.
SensitivityData generate_training_data(const TimingGraph& ilm,
                                       const TrainingDataConfig& cfg);

/// True for clock-network pins with more than one delay fanout (the
/// CPPR-crucial common points; also the is_CPPR feature of Table 1).
bool is_cppr_crucial(const TimingGraph& g, NodeId n);

}  // namespace tmm
