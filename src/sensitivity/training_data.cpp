#include "sensitivity/training_data.hpp"

namespace tmm {

bool is_cppr_crucial(const TimingGraph& g, NodeId n) {
  const auto& node = g.node(n);
  if (node.dead || !node.in_clock_network) return false;
  return g.fanout(n).size() > 1;
}

SensitivityData generate_training_data(const TimingGraph& ilm,
                                       const TrainingDataConfig& cfg) {
  SensitivityData out;
  out.filter = filter_insensitive_pins(ilm, cfg.filter);
  out.ts = evaluate_timing_sensitivity(ilm, out.filter.remained, cfg.ts);

  out.labels.assign(ilm.num_nodes(), 0.0f);
  for (NodeId n = 0; n < ilm.num_nodes(); ++n) {
    if (ilm.node(n).dead) continue;
    bool positive = out.ts.ts[n] > cfg.ts_zero_epsilon;
    if (cfg.cppr_labels && is_cppr_crucial(ilm, n)) positive = true;
    if (positive) {
      out.labels[n] = 1.0f;
      ++out.positives;
    }
  }
  return out;
}

}  // namespace tmm
