#include "sensitivity/ts_eval.hpp"

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sta/propagation.hpp"
#include "util/instrument.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/task_pool.hpp"

namespace tmm {

double mean_relative_diff(std::span<const double> after,
                          std::span<const double> before) {
  if (after.size() != before.size()) {
    log_warn("mean_relative_diff: size mismatch (%zu after vs %zu before); "
             "returning maximal penalty",
             after.size(), before.size());
    return 1.0;
  }
  const std::size_t n = after.size();
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool fa = std::isfinite(after[i]);
    const bool fb = std::isfinite(before[i]);
    if (!fa && !fb) continue;  // both unconstrained: no difference
    ++count;
    if (fa != fb) {
      sum += 1.0;  // structural change: maximal relative penalty
      continue;
    }
    sum += std::fabs(after[i] - before[i]) / std::max(std::fabs(before[i]), 1e-6);
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

namespace {

// Metric handles resolved once at namespace scope: the per-call
// registry name lookup and static-init guard were measurable in the
// per-pin hot loop (the registry is a leaked function-local static, so
// this is safe at static-initialization time).
obs::Counter& g_pins_evaluated = obs::counter("ts.pins_evaluated");
obs::Counter& g_repropagations = obs::counter("ts.repropagations");
obs::Counter& g_dirty_nodes = obs::counter("ts.dirty_nodes");
obs::Counter& g_incremental_frontier =
    obs::counter("ts.incremental_frontier");
obs::Counter& g_pins_failed = obs::counter("ts.pins_failed");
obs::Counter& g_sets_skipped = obs::counter("ts.sets_skipped");

/// Conservative TS for a pin whose re-analysis failed: maximal
/// sensitivity, so the pin is labeled timing-variant and kept in the
/// model — degrading model size, never accuracy.
constexpr double kFailedPinTs = 1.0;

double snapshot_ts(const BoundarySnapshot& after,
                   const BoundarySnapshot& before) {
  const double ds = mean_relative_diff(after.slew, before.slew);
  const double da = mean_relative_diff(after.at, before.at);
  const double dr = mean_relative_diff(after.rat, before.rat);
  const double dk = mean_relative_diff(after.slack, before.slack);
  return (ds + da + dr + dk) / 4.0;
}

}  // namespace

TsResult evaluate_timing_sensitivity(const TimingGraph& ilm,
                                     const std::vector<bool>& candidates,
                                     const TsConfig& cfg) {
  obs::Span span("ts.eval");
  TsResult out;
  out.ts.assign(ilm.num_nodes(), 0.0);
  Stopwatch sw;

  // Random boundary-constraint sets and their reference snapshots.
  Rng rng(cfg.seed);
  std::vector<BoundaryConstraints> sets;
  std::vector<BoundarySnapshot> refs;
  Sta::Options sta_opt;
  sta_opt.cppr = cfg.cppr;
  sta_opt.aocv = cfg.aocv;
  MergeConfig merge_cfg = cfg.merge;
  merge_cfg.aocv = cfg.aocv;
  // Per-constraint-set isolation: a set whose reference run fails
  // (numeric corruption, injected fault) is dropped from the |C|
  // average with a diagnostic instead of killing the design. The RNG
  // draw happens for every set regardless, so the surviving constraint
  // sets are bit-identical to the ones an unfailed run would use.
  Sta ref_sta(ilm, sta_opt);
  for (std::size_t c = 0; c < cfg.num_constraint_sets; ++c) {
    BoundaryConstraints bc = random_constraints(ilm.primary_inputs().size(),
                                                ilm.primary_outputs().size(),
                                                cfg.constraint_gen, rng);
    try {
      fault::inject("ts.constraint_set");
      ref_sta.run(bc);
      refs.push_back(ref_sta.boundary_snapshot());
      sets.push_back(std::move(bc));
    } catch (const std::exception& e) {
      ++out.skipped_sets;
      g_sets_skipped.add();
      if (out.first_failure.empty()) out.first_failure = e.what();
      log_warn("ts-eval: constraint set %zu skipped: %s", c, e.what());
    }
  }
  if (sets.empty())
    throw fault::FlowError(fault::ErrorCode::kUnavailable, "ts.eval",
                           "every reference constraint set failed (" +
                               out.first_failure + ")");

  // Collect the evaluable pins, then fan the independent per-pin
  // re-analyses out over worker threads (results are written to
  // disjoint slots, so the outcome is deterministic for any count).
  std::vector<NodeId> work;
  for (NodeId n = 0; n < ilm.num_nodes(); ++n) {
    if (n >= candidates.size() || !candidates[n]) continue;
    if (ilm.node(n).dead) continue;
    if (!mergeable(ilm, n, merge_cfg)) {
      ++out.skipped_unmergeable;
      continue;
    }
    work.push_back(n);
  }

  const std::size_t threads =
      std::min(cfg.threads == 0 ? util::TaskPool::default_threads()
                                : cfg.threads,
               std::max<std::size_t>(1, work.size()));
  std::atomic<std::size_t> next{0};

  // Progress heartbeat: the TS loop is the dominant stage-1 cost and
  // can run for minutes; report done/total + ETA at info level, rate-
  // limited so the log stays readable at any design size. The CAS on
  // the deadline elects exactly one reporting thread per interval.
  constexpr double kHeartbeatSeconds = 2.0;
  std::atomic<std::size_t> done{0};
  std::atomic<double> next_report{kHeartbeatSeconds};
  auto heartbeat = [&](std::size_t finished) {
    if (log_level() > LogLevel::kInfo) return;
    const double elapsed = sw.seconds();
    double deadline = next_report.load(std::memory_order_relaxed);
    if (elapsed < deadline) return;
    if (!next_report.compare_exchange_strong(deadline,
                                             elapsed + kHeartbeatSeconds,
                                             std::memory_order_relaxed))
      return;  // another worker reported this interval
    const double rate = static_cast<double>(finished) / elapsed;
    const double eta =
        rate > 0.0 ? static_cast<double>(work.size() - finished) / rate : 0.0;
    log_info("ts-eval: %zu/%zu pins (%.0f%%), %.1fs elapsed, eta %.1fs",
             finished, work.size(),
             100.0 * static_cast<double>(finished) /
                 static_cast<double>(std::max<std::size_t>(1, work.size())),
             elapsed, eta);
  };

  const bool use_incremental =
      cfg.incremental && !has_parallel_duplicate_arcs(ilm);
  if (cfg.incremental && !use_incremental)
    log_warn("ts-eval: ILM has parallel duplicate arcs; falling back to the "
             "full per-pin re-analysis path");
  span.set_arg("incremental", use_incremental ? 1.0 : 0.0);

  // Per-pin isolation: an exception inside one pin's re-analysis
  // (numeric guard, injected fault) marks that pin failed —
  // conservatively fully sensitive, so it stays in the model — and the
  // loop continues. Exceptions must never escape a worker thread.
  std::atomic<std::size_t> failed{0};
  static const util::lockorder::LockClass kFailureLockClass(
      "ts.failure_record");
  util::Mutex failure_mu(kFailureLockClass);
  auto record_failure = [&](NodeId n, const char* what) {
    failed.fetch_add(1, std::memory_order_relaxed);
    g_pins_failed.add();
    out.ts[n] = kFailedPinTs;
    util::MutexLock lock(failure_mu);
    if (out.first_failure.empty())
      out.first_failure =
          std::string("pin '") + ilm.node(n).name + "': " + what;
    log_warn("ts-eval: pin %s failed, conservatively kept (%s)",
             ilm.node(n).name.c_str(), what);
  };

  auto worker = [&]() {
    if (use_incremental) {
      // One reusable scratch graph per worker, mutated in place through
      // MergeDelta apply/undo, and one engine per constraint set whose
      // reference checkpoint the incremental runs restore to — instead
      // of a graph copy, a full merge and full propagations per pin.
      // Bundled so the worker can rebuild from the pristine ILM after a
      // failure mid-delta leaves the scratch state unknown.
      struct Scratch {
        TimingGraph graph;
        MergeDelta delta;
        std::vector<Sta> engines;
        Scratch(const TimingGraph& ilm_graph, const Sta::Options& opt,
                const std::vector<BoundaryConstraints>& bc_sets)
            : graph(ilm_graph), delta(graph) {
          engines.reserve(bc_sets.size());
          for (const auto& bc : bc_sets) {
            engines.emplace_back(graph, opt);
            engines.back().run(bc);
            engines.back().set_reference();
          }
        }
      };
      auto scratch = std::make_unique<Scratch>(ilm, sta_opt, sets);
      BoundarySnapshot snap;  // reused: snapshot_into is allocation-free
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= work.size()) return;
        const NodeId n = work[i];
        try {
          if (scratch == nullptr)
            throw fault::FlowError(fault::ErrorCode::kUnavailable, "ts.eval",
                                   "worker scratch state unrecoverable");
          fault::inject("ts.eval_pin");
          if (scratch->delta.apply(n, merge_cfg)) {
            g_dirty_nodes.add(scratch->delta.touched().size());
            double ts_sum = 0.0;
            for (std::size_t c = 0; c < sets.size(); ++c) {
              const StaIncrementalStats st = scratch->engines[c].run_incremental(
                  sets[c], scratch->delta.touched());
              g_incremental_frontier.add(st.fwd_recomputed +
                                         st.bwd_recomputed);
              scratch->engines[c].snapshot_into(snap);
              ts_sum += snapshot_ts(snap, refs[c]);
            }
            scratch->delta.undo();
            out.ts[n] = ts_sum / static_cast<double>(sets.size());
            g_repropagations.add(sets.size());
          } else {
            // Refused by the merge legality/size rules: the full path
            // would re-run timing on an unchanged graph and diff two
            // identical snapshots — TS is exactly 0.
            out.ts[n] = 0.0;
          }
        } catch (const std::exception& e) {
          record_failure(n, e.what());
          try {
            scratch = std::make_unique<Scratch>(ilm, sta_opt, sets);
          } catch (const std::exception& rebuild_err) {
            // Rebuild itself failed: drain the remaining work as failed
            // rather than crash the pool.
            scratch = nullptr;
            log_error("ts-eval: scratch rebuild failed: %s",
                      rebuild_err.what());
          }
        }
        g_pins_evaluated.add();
        heartbeat(done.fetch_add(1, std::memory_order_relaxed) + 1);
      }
    }
    std::vector<bool> keep(ilm.num_nodes(), true);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= work.size()) return;
      const NodeId n = work[i];
      try {
        fault::inject("ts.eval_pin");
        // Remove pin n exactly as macro generation would, on a scratch
        // copy.
        TimingGraph scratch = ilm;
        keep[n] = false;
        merge_insensitive_pins(scratch, keep, merge_cfg);
        keep[n] = true;

        Sta sta(scratch, sta_opt);
        double ts_sum = 0.0;
        for (std::size_t c = 0; c < sets.size(); ++c) {
          sta.run(sets[c]);
          ts_sum += snapshot_ts(sta.boundary_snapshot(), refs[c]);
        }
        out.ts[n] = ts_sum / static_cast<double>(sets.size());
        g_repropagations.add(sets.size());
      } catch (const std::exception& e) {
        keep[n] = true;  // restore for the next iteration
        record_failure(n, e.what());
      }
      g_pins_evaluated.add();
      heartbeat(done.fetch_add(1, std::memory_order_relaxed) + 1);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  out.evaluated_pins = work.size();
  out.failed_pins = failed.load(std::memory_order_relaxed);
  out.eval_seconds = sw.seconds();
  span.set_arg("pins", static_cast<double>(out.evaluated_pins));
  obs::trace_rss_sample();
  return out;
}

}  // namespace tmm
