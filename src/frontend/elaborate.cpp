#include "frontend/elaborate.hpp"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tmm::frontend {

namespace {

obs::Counter& g_flat_prims = obs::counter("frontend.flat_prims");

constexpr std::size_t kMaxFlatPrims = 100'000'000;

[[noreturn]] void elab_fail(const SourceLoc& loc, const std::string& msg) {
  throw fault::FlowError(fault::ErrorCode::kParse, "frontend.parse",
                         loc.str() + ": " + msg);
}

using PortMap = std::unordered_map<std::string, std::string>;

struct Elab {
  const IrNetlist& ir;
  const Library& lib;
  analysis::LintReport* issues;
  std::unordered_map<std::string, const IrModel*> models;
  std::vector<std::string> stack;  ///< open model names (recursion check)
  FlatNetlist out;

  Elab(const IrNetlist& netlist, const Library& library,
       analysis::LintReport* report)
      : ir(netlist), lib(library), issues(report) {
    for (const IrModel& m : ir.models) models.emplace(m.name, &m);
  }

  void dangling(const InstanceNode& inst, const std::string& what) {
    if (issues == nullptr) return;
    issues->add(analysis::rule::kIrDanglingPin, analysis::Severity::kError,
                inst.loc.str() + " instance " + inst.name, what,
                "match the connection list to the resolved model/cell ports");
  }

  void bump_prims() {
    if (out.prims.size() > kMaxFlatPrims)
      throw fault::FlowError(fault::ErrorCode::kParse, "frontend.parse",
                             out.source + ": flattened netlist exceeds " +
                                 std::to_string(kMaxFlatPrims) +
                                 " primitives");
    g_flat_prims.add();
  }

  /// Map a net name in `m`'s scope to its flat name: bound ports follow
  /// the parent net, everything else gets the instance prefix.
  static std::string resolve(const std::string& net, const std::string& prefix,
                             const PortMap& portmap) {
    if (net.empty()) return {};
    const auto it = portmap.find(net);
    if (it != portmap.end()) return it->second;
    return prefix + net;
  }

  /// Ordered formal-port list used to resolve positional connections.
  static std::vector<std::string> formal_order(const IrModel& m) {
    if (!m.port_order.empty()) return m.port_order;
    std::vector<std::string> order = m.inputs;
    order.insert(order.end(), m.outputs.begin(), m.outputs.end());
    return order;
  }

  void flatten_instance(const InstanceNode& inst, const std::string& prefix,
                        const PortMap& portmap) {
    const auto mit = models.find(inst.model);
    if (mit != models.end()) {
      flatten_child_model(inst, *mit->second, prefix, portmap);
      return;
    }
    if (lib.has_cell(inst.model)) {
      flatten_cell(inst, prefix, portmap);
      return;
    }
    elab_fail(inst.loc, "unknown model or library cell '" + inst.model + "'");
  }

  void flatten_child_model(const InstanceNode& inst, const IrModel& child,
                           const std::string& prefix, const PortMap& portmap) {
    for (const std::string& open : stack)
      if (open == child.name)
        elab_fail(inst.loc, "recursive instantiation of model '" +
                                child.name + "'");
    std::unordered_set<std::string> ports(child.inputs.begin(),
                                          child.inputs.end());
    ports.insert(child.outputs.begin(), child.outputs.end());
    const std::vector<std::string> order = formal_order(child);
    PortMap childmap;
    std::size_t pos = 0;
    for (const auto& [formal, actual] : inst.conns) {
      std::string f = formal;
      if (f.empty()) {  // positional
        if (pos >= order.size()) {
          dangling(inst, "positional connection " + std::to_string(pos + 1) +
                             " exceeds the " + std::to_string(order.size()) +
                             " ports of model '" + child.name + "'");
          ++pos;
          continue;
        }
        f = order[pos++];
      } else if (ports.find(f) == ports.end()) {
        dangling(inst, "pin '" + f + "' is not a port of model '" +
                           child.name + "'");
        continue;
      }
      if (actual.empty()) continue;  // explicitly unconnected
      const std::string flat = resolve(actual, prefix, portmap);
      if (!childmap.emplace(f, flat).second)
        elab_fail(inst.loc, "pin '" + f + "' connected twice on instance '" +
                                inst.name + "'");
    }
    stack.push_back(child.name);
    flatten_model(child, prefix + inst.name + "/", childmap);
    stack.pop_back();
  }

  void flatten_cell(const InstanceNode& inst, const std::string& prefix,
                    const PortMap& portmap) {
    const Cell& cell = lib.cell(lib.cell_id(inst.model));
    FlatPrimitive prim;
    prim.kind = FlatKind::kCell;
    prim.name = prefix + inst.name;
    prim.cell = inst.model;
    prim.loc = inst.loc;
    prim.port_nets.assign(cell.ports.size(), std::string());
    std::size_t pos = 0;
    for (const auto& [formal, actual] : inst.conns) {
      std::size_t idx = cell.ports.size();
      if (formal.empty()) {  // positional
        if (pos >= cell.ports.size()) {
          dangling(inst, "positional connection " + std::to_string(pos + 1) +
                             " exceeds the " +
                             std::to_string(cell.ports.size()) +
                             " ports of cell '" + cell.name + "'");
          ++pos;
          continue;
        }
        idx = pos++;
      } else {
        for (std::size_t i = 0; i < cell.ports.size(); ++i)
          if (cell.ports[i].name == formal) {
            idx = i;
            break;
          }
        if (idx == cell.ports.size()) {
          dangling(inst, "pin '" + formal + "' is not a port of cell '" +
                             cell.name + "'");
          continue;
        }
      }
      if (actual.empty()) continue;  // explicitly unconnected
      if (!prim.port_nets[idx].empty())
        elab_fail(inst.loc, "pin '" + cell.ports[idx].name +
                                "' connected twice on instance '" + inst.name +
                                "'");
      prim.port_nets[idx] = resolve(actual, prefix, portmap);
    }
    out.prims.push_back(std::move(prim));
    bump_prims();
  }

  void flatten_model(const IrModel& m, const std::string& prefix,
                     const PortMap& portmap) {
    std::size_t local = 0;
    for (const NamesNode& node : m.names) {
      FlatPrimitive prim;
      prim.kind = FlatKind::kNames;
      prim.name = prefix + "nm" + std::to_string(local++);
      prim.cover = node.cover;
      prim.loc = node.loc;
      prim.inputs.reserve(node.inputs.size());
      for (const std::string& in : node.inputs)
        prim.inputs.push_back(resolve(in, prefix, portmap));
      prim.output = resolve(node.output, prefix, portmap);
      out.prims.push_back(std::move(prim));
      bump_prims();
    }
    local = 0;
    for (const LatchNode& latch : m.latches) {
      FlatPrimitive prim;
      prim.kind = FlatKind::kLatch;
      prim.name = prefix + "lt" + std::to_string(local++);
      prim.inputs.push_back(resolve(latch.input, prefix, portmap));
      prim.output = resolve(latch.output, prefix, portmap);
      prim.control = resolve(latch.control, prefix, portmap);
      prim.loc = latch.loc;
      out.prims.push_back(std::move(prim));
      bump_prims();
    }
    for (const InstanceNode& inst : m.instances)
      flatten_instance(inst, prefix, portmap);
  }

  const IrModel& pick_top(const std::string& top) {
    if (!top.empty()) {
      const auto it = models.find(top);
      if (it == models.end())
        throw fault::FlowError(fault::ErrorCode::kParse, "frontend.parse",
                               ir.source + ": top model '" + top +
                                   "' not found");
      return *it->second;
    }
    std::unordered_set<std::string> instantiated;
    for (const IrModel& m : ir.models)
      for (const InstanceNode& inst : m.instances)
        if (models.find(inst.model) != models.end())
          instantiated.insert(inst.model);
    for (const IrModel& m : ir.models)
      if (instantiated.find(m.name) == instantiated.end()) return m;
    return ir.models.front();
  }

  FlatNetlist run(const std::string& top) {
    const IrModel& root = pick_top(top);
    out.name = root.name;
    out.source = ir.source;
    out.inputs = root.inputs;
    out.outputs = root.outputs;
    out.clocks = root.clocks;
    out.loc = root.loc;
    stack.push_back(root.name);
    flatten_model(root, "", {});
    stack.pop_back();
    return std::move(out);
  }
};

}  // namespace

FlatNetlist elaborate(const IrNetlist& ir, const Library& lib,
                      const std::string& top, analysis::LintReport* issues) {
  obs::Span span("frontend.elaborate");
  if (ir.models.empty())
    throw fault::FlowError(fault::ErrorCode::kParse, "frontend.parse",
                           ir.source + ": empty netlist");
  Elab e(ir, lib, issues);
  return e.run(top);
}

}  // namespace tmm::frontend
