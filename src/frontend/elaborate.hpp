#pragma once
// Hierarchy elaboration (docs/FRONTEND.md): flatten a parsed IrNetlist
// into FlatNetlist primitives over fully-qualified net names. Instances
// resolve first against sibling models in the same file, then against
// library cells by name; anything else — and any recursive model
// chain — raises fault::FlowError(kParse). Dangling `.subckt`/instance
// pins are collected as F003 findings rather than thrown, so `tmm lint`
// can show all of them at once.

#include <string>

#include "analysis/diagnostics.hpp"
#include "frontend/ir.hpp"
#include "liberty/library.hpp"

namespace tmm::frontend {

/// Flatten `ir` under top model `top` (empty = auto-select: the single
/// model no other model instantiates, else the first model). `lib`
/// resolves instance names that are not models in the file. F003
/// findings (formal pin named on an instance but absent from the
/// resolved model/cell) are appended to `issues` when non-null.
FlatNetlist elaborate(const IrNetlist& ir, const Library& lib,
                      const std::string& top = {},
                      analysis::LintReport* issues = nullptr);

}  // namespace tmm::frontend
