#include "frontend/frontend.hpp"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "frontend/blif_parser.hpp"
#include "frontend/elaborate.hpp"
#include "frontend/frontend_lint.hpp"
#include "frontend/verilog_parser.hpp"
#include "netlist/netlist_io.hpp"
#include "obs/trace.hpp"
#include "util/mutex.hpp"

namespace tmm::frontend {

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::string_view suf(suffix);
  return s.size() >= suf.size() &&
         std::string_view(s).substr(s.size() - suf.size()) == suf;
}

// --- library registry ----------------------------------------------
// One mutable Library per generator seed, living for the process. The
// map itself is lock-protected; the returned Library references are
// only mutated by ensure_names_cell during imports, which the CLI and
// flow runner perform from a single thread.

const util::lockorder::LockClass kRegistryLockClass("frontend.registry");

struct Registry {
  util::Mutex mu{kRegistryLockClass};
  std::map<std::uint64_t, std::unique_ptr<Library>> libs
      TMM_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed: returned
  return *r;                            // references must stay valid
}

}  // namespace

bool is_frontend_path(const std::string& path) {
  return ends_with(path, ".blif") || ends_with(path, ".v");
}

IrNetlist parse_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw fault::FlowError(fault::ErrorCode::kIo, "frontend.parse",
                           "cannot open '" + path + "'");
  if (ends_with(path, ".blif")) return parse_blif(is, path);
  if (ends_with(path, ".v")) return parse_verilog(is, path);
  throw fault::FlowError(fault::ErrorCode::kConfig, "frontend.parse",
                         "'" + path +
                             "': unsupported frontend extension (expected "
                             ".blif or .v)");
}

Library& library_for_seed(std::uint64_t seed) {
  Registry& reg = registry();
  util::MutexLock lock(reg.mu);
  auto it = reg.libs.find(seed);
  if (it == reg.libs.end()) {
    LibraryGenConfig cfg;
    cfg.seed = seed;
    it = reg.libs
             .emplace(seed, std::make_unique<Library>(generate_library(cfg)))
             .first;
  }
  return *it->second;
}

Library* library_for_name(std::string_view name) {
  LibraryGenConfig cfg;
  if (!library_config_for_name(name, &cfg)) return nullptr;
  return &library_for_seed(cfg.seed);
}

Design import_file(const std::string& path, const FrontendConfig& cfg,
                   ImportStats* stats, analysis::LintReport* report_out) {
  obs::Span span("frontend.import");
  IrNetlist ir = parse_file(path);
  Library& lib = library_for_seed(cfg.lib_seed);
  analysis::LintReport report;
  const FlatNetlist flat = elaborate(ir, lib, cfg.top, &report);
  report.merge(lint_flat(flat, lib));
  if (report_out != nullptr) *report_out = report;
  if (report.errors() > 0)
    throw fault::FlowError(fault::ErrorCode::kParse, "frontend.map",
                           path + ": import lint failed\n" +
                               report.to_string());
  ImportStats local;
  Design design = map_netlist(flat, lib, cfg, &local);
  local.models = ir.models.size();
  if (stats != nullptr) *stats = local;
  return design;
}

namespace {

/// Cell names referenced by `gate` records of a .dsn file, plus the
/// library name from its header. Best-effort: returns false when the
/// header is unreadable (the real parser then produces the error).
bool scan_dsn(const std::string& path, std::string* lib_name,
              std::vector<std::string>* cells) {
  std::ifstream is(path);
  if (!is) return false;
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    if (!saw_header) {
      std::string design_name;
      if (kw != "design" || !(ls >> design_name >> *lib_name)) return false;
      saw_header = true;
      continue;
    }
    if (kw == "gate") {
      std::string gate_name;
      std::string cell_name;
      if (ls >> gate_name >> cell_name) cells->push_back(cell_name);
    }
  }
  return saw_header;
}

}  // namespace

Design load_design_any(const std::string& path, const FrontendConfig& cfg,
                       const Library* preferred) {
  if (is_frontend_path(path)) return import_file(path, cfg);

  std::string lib_name;
  std::vector<std::string> cells;
  if (scan_dsn(path, &lib_name, &cells)) {
    const auto missing_from = [&cells](const Library& lib) {
      for (const std::string& c : cells)
        if (!lib.has_cell(c)) return true;
      return false;
    };
    if (preferred != nullptr && preferred->name() == lib_name &&
        !missing_from(*preferred))
      return read_design_file(path, *preferred);
    if (Library* lib = library_for_name(lib_name); lib != nullptr) {
      // Re-synthesize referenced NK* cells from their names so a .dsn
      // produced by `tmm import` loads in a fresh process.
      LibraryGenConfig gen_cfg;
      library_config_for_name(lib_name, &gen_cfg);
      for (const std::string& c : cells) {
        NamesCellSpec spec;
        if (!lib->has_cell(c) && parse_names_cell_name(c, &spec))
          ensure_names_cell(*lib, spec, gen_cfg);
      }
      return read_design_file(path, *lib);
    }
  }
  // Unscannable or foreign library name: let the strict parser report.
  if (preferred != nullptr) return read_design_file(path, *preferred);
  return read_design_file(path, library_for_seed(cfg.lib_seed));
}

}  // namespace tmm::frontend
