#pragma once
// Lexers for the real-circuit frontend (docs/FRONTEND.md).
//
// BLIF is line-oriented ('\' continuation, '#' comments), structural
// Verilog is token-oriented ('//' and '/* */' comments), so the two
// parsers share error plumbing but not a tokenizer. Both enforce the
// same hygiene the repo's other text readers do (fault/token_reader):
// every diagnostic is a fault::FlowError(kParse) carrying source:line
// and the offending token, and token/line lengths are capped so a
// corrupt file can never turn into a runaway allocation.

#include <cstddef>
#include <istream>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace tmm::frontend {

/// Any single token longer than this is a parse error: real netlist
/// identifiers are tens of bytes, so an oversized token means a corrupt
/// or hostile file, not a big design.
inline constexpr std::size_t kMaxTokenBytes = 4096;
/// Cap on one logical (continuation-joined) BLIF line.
inline constexpr std::size_t kMaxLineBytes = 1u << 20;

/// Raise fault::FlowError(kParse, "frontend.parse") at source:line.
[[noreturn]] void parse_fail(const std::string& source, std::size_t line,
                             const std::string& msg);

/// Logical-line reader for BLIF: joins '\'-continued lines, strips '#'
/// comments, splits on whitespace. `line()` reports the first physical
/// line of the current logical line.
class BlifLexer {
 public:
  BlifLexer(std::istream& is, std::string source)
      : is_(is), source_(std::move(source)) {}

  /// Next non-empty logical line as tokens; false at end of input.
  bool next_line(std::vector<std::string>& tokens);

  std::size_t line() const noexcept { return line_; }
  const std::string& source() const noexcept { return source_; }

  [[noreturn]] void fail(const std::string& msg) const {
    parse_fail(source_, line_, msg);
  }

 private:
  std::istream& is_;
  std::string source_;
  std::size_t line_ = 0;      ///< first physical line of current logical line
  std::size_t physical_ = 0;  ///< physical lines consumed so far
};

/// Character tokenizer for the structural-Verilog subset. Tokens are
/// identifiers ([A-Za-z_$][A-Za-z0-9_$]*, or \escaped names), numbers,
/// and single punctuation characters from "(),.;=[]:".
class VerilogLexer {
 public:
  VerilogLexer(std::istream& is, std::string source)
      : is_(is), source_(std::move(source)) {}

  /// Next token; empty string at end of input.
  std::string next();
  /// Peek without consuming.
  const std::string& peek();

  std::size_t line() const noexcept { return line_; }
  const std::string& source() const noexcept { return source_; }

  [[noreturn]] void fail(const std::string& msg) const {
    parse_fail(source_, line_, msg);
  }

  /// next() that must equal `tok` exactly.
  void expect(const std::string& tok);
  /// next() that must be an identifier; `what` names it in diagnostics.
  std::string ident(const char* what);

 private:
  int get();
  int peek_char();
  void skip_ws_and_comments();

  std::istream& is_;
  std::string source_;
  std::size_t line_ = 1;
  std::string lookahead_;
  bool has_lookahead_ = false;
};

/// True when `s` is a valid frontend identifier (printable, no
/// whitespace, fits the .dsn token grammar the importer writes).
bool valid_identifier(const std::string& s);

}  // namespace tmm::frontend
