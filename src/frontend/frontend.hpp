#pragma once
// Real-circuit frontend entry points (docs/FRONTEND.md): import BLIF or
// structural Verilog into a tmm::Design mapped onto a generated NLDM
// library, and load designs from any supported path (.blif/.v/.dsn)
// behind one call so the flow runner and CLI need no format dispatch.
//
// Imported designs reference on-demand NK* cells that do not exist in a
// freshly generated library; a process-lifetime *registry* of mutable
// libraries (one per generator seed) owns them. Cells accumulate there
// and are re-synthesized from their names when a previously written
// .dsn is re-read, so `tmm import x.blif -o x.dsn && tmm sta x.dsn`
// works across processes without shipping the library.

#include <cstdint>
#include <string>
#include <string_view>

#include "analysis/diagnostics.hpp"
#include "frontend/tech_map.hpp"

namespace tmm::frontend {

/// True for paths the frontend parses (.blif, .v).
bool is_frontend_path(const std::string& path);

/// Parse a .blif/.v file into frontend IR (dispatch on extension).
/// Raises fault::FlowError(kIo) for unreadable files, kParse for
/// malformed content, kConfig for unsupported extensions.
IrNetlist parse_file(const std::string& path);

/// Process-lifetime mutable library for a generator seed. Thread-safe;
/// the reference stays valid for the life of the process.
Library& library_for_seed(std::uint64_t seed);

/// Registry library whose serialized name is `name` (see
/// library_name_for_seed), or nullptr for names the generator never
/// produces.
Library* library_for_name(std::string_view name);

/// Full import pipeline: parse -> elaborate -> lint_flat (F001-F004,
/// plus F003 findings from elaboration) -> tech map -> validate. Lint
/// errors abort with kParse carrying the report text; `report_out`
/// (when non-null) receives the findings either way. The design is
/// mapped against library_for_seed(cfg.lib_seed).
Design import_file(const std::string& path, const FrontendConfig& cfg = {},
                   ImportStats* stats = nullptr,
                   analysis::LintReport* report_out = nullptr);

/// Load a design from any supported path. `.blif`/`.v` go through
/// import_file. `.dsn` files are read with `preferred` when its name
/// matches the file header (the baseline flow path — keeps existing
/// outputs bit-identical); otherwise the matching registry library is
/// used, with referenced NK* cells re-synthesized from their names
/// before parsing.
Design load_design_any(const std::string& path,
                       const FrontendConfig& cfg = {},
                       const Library* preferred = nullptr);

}  // namespace tmm::frontend
