#pragma once
// Import-time lint over the elaborated (flattened) netlist — rules
// F001–F004, catalogued in docs/ANALYSIS.md. These run before tech
// mapping so connectivity mistakes are reported against BLIF/Verilog
// source locations, not against the mapped .dsn design.

#include "analysis/diagnostics.hpp"
#include "frontend/ir.hpp"
#include "liberty/library.hpp"

namespace tmm::frontend {

/// Check flat-netlist connectivity:
///   F001 (error)   net consumed by a pin or primary output but driven
///                  by nothing (no primary input, no primitive output);
///   F002 (error)   net with more than one driver;
///   F003 (error)   cell instance input port left unconnected;
///   F004 (warning) net driven but consumed by nothing.
/// `lib` resolves cell port directions for kCell primitives.
analysis::LintReport lint_flat(const FlatNetlist& flat,
                               const Library& lib);

}  // namespace tmm::frontend
