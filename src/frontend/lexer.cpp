#include "frontend/lexer.hpp"

#include <cctype>
#include <string_view>

namespace tmm::frontend {

void parse_fail(const std::string& source, std::size_t line,
                const std::string& msg) {
  throw fault::FlowError(fault::ErrorCode::kParse, "frontend.parse",
                         source + ":" + std::to_string(line) + ": " + msg);
}

bool valid_identifier(const std::string& s) {
  if (s.empty() || s.size() > kMaxTokenBytes) return false;
  for (const unsigned char c : s)
    if (c <= ' ' || c >= 127) return false;
  return true;
}

bool BlifLexer::next_line(std::vector<std::string>& tokens) {
  tokens.clear();
  std::string logical;
  std::string raw;
  while (tokens.empty()) {
    logical.clear();
    std::size_t first_physical = 0;
    // Join '\'-continued physical lines into one logical line.
    for (;;) {
      if (!std::getline(is_, raw)) {
        if (logical.empty() && first_physical == 0) return false;
        break;
      }
      ++physical_;
      if (first_physical == 0) first_physical = physical_;
      // Strip comments first: a '\' inside a comment does not continue.
      const std::size_t hash = raw.find('#');
      if (hash != std::string::npos) raw.resize(hash);
      // Trailing '\' (possibly followed by spaces) continues the line.
      std::size_t end = raw.size();
      while (end > 0 && (raw[end - 1] == ' ' || raw[end - 1] == '\t' ||
                         raw[end - 1] == '\r'))
        --end;
      const bool continued = end > 0 && raw[end - 1] == '\\';
      if (continued) --end;
      logical.append(raw, 0, end);
      if (logical.size() > kMaxLineBytes)
        parse_fail(source_, first_physical,
                   "logical line exceeds " + std::to_string(kMaxLineBytes) +
                       " bytes");
      if (!continued) break;
      logical += ' ';
    }
    if (first_physical == 0) return false;
    line_ = first_physical;
    // Whitespace split.
    std::size_t i = 0;
    while (i < logical.size()) {
      while (i < logical.size() &&
             std::isspace(static_cast<unsigned char>(logical[i])) != 0)
        ++i;
      std::size_t j = i;
      while (j < logical.size() &&
             std::isspace(static_cast<unsigned char>(logical[j])) == 0)
        ++j;
      if (j > i) {
        if (j - i > kMaxTokenBytes)
          parse_fail(source_, line_,
                     "token exceeds " + std::to_string(kMaxTokenBytes) +
                         " bytes");
        tokens.emplace_back(logical, i, j - i);
      }
      i = j;
    }
  }
  return true;
}

int VerilogLexer::get() {
  const int c = is_.get();
  if (c == '\n') ++line_;
  return c;
}

int VerilogLexer::peek_char() { return is_.peek(); }

void VerilogLexer::skip_ws_and_comments() {
  for (;;) {
    int c = peek_char();
    if (c == EOF) return;
    if (std::isspace(c) != 0) {
      get();
      continue;
    }
    if (c == '/') {
      get();
      const int c2 = peek_char();
      if (c2 == '/') {
        while (c != EOF && c != '\n') c = get();
        continue;
      }
      if (c2 == '*') {
        get();
        const std::size_t start = line_;
        int prev = 0;
        for (;;) {
          c = get();
          if (c == EOF)
            parse_fail(source_, start, "unterminated /* comment");
          if (prev == '*' && c == '/') break;
          prev = c;
        }
        continue;
      }
      parse_fail(source_, line_, "unexpected character '/'");
    }
    return;
  }
}

std::string VerilogLexer::next() {
  if (has_lookahead_) {
    has_lookahead_ = false;
    return std::move(lookahead_);
  }
  skip_ws_and_comments();
  const int c0 = peek_char();
  if (c0 == EOF) return {};
  std::string tok;
  if (c0 == '\\') {
    // Escaped identifier: backslash up to the next whitespace.
    get();
    for (;;) {
      const int c = peek_char();
      if (c == EOF || std::isspace(c) != 0) break;
      tok += static_cast<char>(get());
      if (tok.size() > kMaxTokenBytes)
        parse_fail(source_, line_, "token exceeds " +
                                       std::to_string(kMaxTokenBytes) +
                                       " bytes");
    }
    if (tok.empty()) parse_fail(source_, line_, "empty escaped identifier");
    return tok;
  }
  if (std::isalpha(c0) != 0 || c0 == '_' || c0 == '$' || std::isdigit(c0) != 0) {
    for (;;) {
      const int c = peek_char();
      if (c == EOF ||
          (std::isalnum(c) == 0 && c != '_' && c != '$' && c != '\'')) break;
      tok += static_cast<char>(get());
      if (tok.size() > kMaxTokenBytes)
        parse_fail(source_, line_, "token exceeds " +
                                       std::to_string(kMaxTokenBytes) +
                                       " bytes");
    }
    return tok;
  }
  constexpr std::string_view kPunct = "(),.;=[]:#";
  if (kPunct.find(static_cast<char>(c0)) != std::string_view::npos) {
    tok += static_cast<char>(get());
    return tok;
  }
  parse_fail(source_, line_,
             std::string("unexpected character '") + static_cast<char>(c0) +
                 "'");
}

const std::string& VerilogLexer::peek() {
  if (!has_lookahead_) {
    lookahead_ = next();
    has_lookahead_ = true;
  }
  return lookahead_;
}

void VerilogLexer::expect(const std::string& tok) {
  const std::string got = next();
  if (got != tok)
    fail("expected '" + tok + "', got " +
         (got.empty() ? "end of input" : "'" + got + "'"));
}

std::string VerilogLexer::ident(const char* what) {
  const std::string got = next();
  if (got.empty()) fail(std::string("expected ") + what + ", got end of input");
  const unsigned char c0 = static_cast<unsigned char>(got[0]);
  if (std::isalpha(c0) == 0 && c0 != '_' && c0 != '$')
    fail(std::string("expected ") + what + ", got '" + got + "'");
  return got;
}

}  // namespace tmm::frontend
