#pragma once
// Structural-Verilog parser (docs/FRONTEND.md). Supported subset:
// `module`/`endmodule`, ANSI and non-ANSI scalar port declarations,
// `wire` declarations, module/cell instances with named (`.f(net)`) or
// positional connections, `//` and `/* */` comments, `\escaped` names.
// Behavioural constructs, vectors and `assign` raise
// fault::FlowError(kParse); so does any undeclared signal.

#include <iosfwd>
#include <string>

#include "frontend/ir.hpp"

namespace tmm::frontend {

IrNetlist parse_verilog(std::istream& is, std::string source = "<verilog>");

}  // namespace tmm::frontend
