#pragma once
// Intermediate netlist of the real-circuit frontend (docs/FRONTEND.md).
//
// Both parsers (BLIF, structural Verilog) produce the same hierarchical
// IR: models with ports, single-output `.names` SOP nodes, latches and
// instances of other models or library cells. Elaboration flattens the
// hierarchy into FlatNetlist — primitives over fully-qualified net
// names — which is what the import lint rules (F001–F004) and the tech
// mapper consume. Every element keeps its source location so a mapping
// diagnostic can point at the BLIF/Verilog line that introduced it.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tmm::frontend {

/// Position of an IR element in its source file.
struct SourceLoc {
  std::string file;
  std::size_t line = 0;
  std::string str() const { return file + ":" + std::to_string(line); }
};

/// Single-output sum-of-products cover of a `.names` node. Each row is
/// the input plane (chars in {'0','1','-'}, one per input); all rows of
/// a node share one output value: '1' = on-set cover, '0' = off-set.
/// An empty row set denotes the constant (!output_value) function.
struct SopCover {
  std::vector<std::string> rows;
  char output_value = '1';
};

struct NamesNode {
  std::vector<std::string> inputs;
  std::string output;
  SopCover cover;
  SourceLoc loc;
};

struct LatchNode {
  std::string input;
  std::string output;
  std::string control;  ///< clock net; empty = NIL / unclocked
  int init = 3;         ///< BLIF init value 0..3 (3 = unknown)
  SourceLoc loc;
};

/// `.subckt` / Verilog instance: a reference to another model in the
/// same file or to a library cell. Connections are (formal, actual)
/// pairs; an empty formal marks a positional Verilog connection,
/// resolved against the resolved model/cell port order at elaboration.
struct InstanceNode {
  std::string model;
  std::string name;  ///< instance name (synthesized for BLIF .subckt)
  std::vector<std::pair<std::string, std::string>> conns;
  SourceLoc loc;
};

struct IrModel {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<std::string> clocks;  ///< `.clock` declarations (BLIF)
  /// Verilog header port order (inputs and outputs interleaved), used
  /// to resolve positional instance connections. Empty for BLIF models;
  /// elaboration then falls back to inputs-then-outputs order.
  std::vector<std::string> port_order;
  std::vector<NamesNode> names;
  std::vector<LatchNode> latches;
  std::vector<InstanceNode> instances;
  SourceLoc loc;
};

struct IrNetlist {
  std::vector<IrModel> models;
  std::string source;  ///< file/stream name for diagnostics
};

// --- elaborated (flattened) form -----------------------------------

enum class FlatKind : std::uint8_t { kNames, kLatch, kCell };

/// One flattened primitive. Net names are hierarchical
/// ("<inst>/<inst>/<net>"); top-model nets keep their plain names.
struct FlatPrimitive {
  FlatKind kind = FlatKind::kNames;
  std::string name;  ///< unique flattened instance name
  // kNames: inputs (cover order) -> output.
  std::vector<std::string> inputs;
  std::string output;
  SopCover cover;
  // kLatch: inputs = {data net}, output = Q net, control = clock net.
  std::string control;
  // kCell: library cell name + nets parallel to the cell's port list
  // ("" = unconnected port).
  std::string cell;
  std::vector<std::string> port_nets;
  SourceLoc loc;
};

struct FlatNetlist {
  std::string name;    ///< top model name
  std::string source;  ///< file/stream name for diagnostics
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<std::string> clocks;  ///< declared clock nets (top model)
  std::vector<FlatPrimitive> prims;
  SourceLoc loc;
};

}  // namespace tmm::frontend
