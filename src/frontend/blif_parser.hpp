#pragma once
// BLIF parser (docs/FRONTEND.md): `.model`/`.inputs`/`.outputs`/
// `.clock`/`.names`/`.latch`/`.subckt`/`.end`, multi-model files.
// Produces the frontend IR; malformed input raises
// fault::FlowError(kParse) with source:line and the offending token.

#include <iosfwd>
#include <string>

#include "frontend/ir.hpp"

namespace tmm::frontend {

IrNetlist parse_blif(std::istream& is, std::string source = "<blif>");

}  // namespace tmm::frontend
