#include "frontend/blif_parser.hpp"

#include <unordered_set>

#include "frontend/lexer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tmm::frontend {

namespace {

obs::Counter& g_models = obs::counter("frontend.blif_models");
obs::Counter& g_names = obs::counter("frontend.blif_names_nodes");
obs::Counter& g_latches = obs::counter("frontend.blif_latches");
obs::Counter& g_subckts = obs::counter("frontend.blif_subckts");
obs::Counter& g_cover_rows = obs::counter("frontend.blif_cover_rows");

/// Hard cap on structural element counts: a corrupt header can not
/// balloon memory before validation sees it (netlist_io idiom).
constexpr std::size_t kMaxElements = 100'000'000;

struct Parser {
  BlifLexer lex;
  IrNetlist out;
  IrModel* model = nullptr;     ///< currently open model
  NamesNode* names = nullptr;   ///< currently open .names (cover rows)
  std::unordered_set<std::string> model_names;
  std::size_t subckt_count = 0;

  explicit Parser(std::istream& is, std::string source)
      : lex(is, std::move(source)) {
    out.source = lex.source();
  }

  void require_model(const std::string& directive) {
    if (model == nullptr)
      lex.fail(directive + " outside a .model");
  }

  void check_name(const std::string& s, const char* what) {
    if (!valid_identifier(s))
      lex.fail(std::string("invalid ") + what + " '" + s + "'");
  }

  void close_names() { names = nullptr; }

  void begin_model(const std::vector<std::string>& tok) {
    if (tok.size() > 2) lex.fail(".model takes a single name");
    std::string name = tok.size() == 2 ? tok[1] : "top";
    check_name(name, "model name");
    if (!model_names.insert(name).second)
      lex.fail("duplicate .model '" + name + "'");
    out.models.emplace_back();
    model = &out.models.back();
    model->name = std::move(name);
    model->loc = {lex.source(), lex.line()};
    g_models.add();
  }

  void add_ports(const std::vector<std::string>& tok,
                 std::vector<std::string>* dst, const char* what) {
    close_names();
    for (std::size_t i = 1; i < tok.size(); ++i) {
      check_name(tok[i], what);
      dst->push_back(tok[i]);
      if (dst->size() > kMaxElements) lex.fail("too many ports");
    }
  }

  void begin_names(const std::vector<std::string>& tok) {
    require_model(".names");
    if (tok.size() < 2) lex.fail(".names needs at least an output");
    NamesNode node;
    for (std::size_t i = 1; i + 1 < tok.size(); ++i) {
      check_name(tok[i], ".names input");
      node.inputs.push_back(tok[i]);
    }
    check_name(tok.back(), ".names output");
    node.output = tok.back();
    node.loc = {lex.source(), lex.line()};
    if (node.inputs.size() > 64)
      lex.fail(".names with " + std::to_string(node.inputs.size()) +
               " inputs (max 64 supported)");
    model->names.push_back(std::move(node));
    if (model->names.size() > kMaxElements) lex.fail("too many .names nodes");
    names = &model->names.back();
    g_names.add();
  }

  void add_cover_row(const std::vector<std::string>& tok) {
    if (names == nullptr)
      lex.fail("cover row '" + tok[0] + "' outside a .names block");
    const std::size_t k = names->inputs.size();
    std::string plane;
    char out_val = 0;
    if (k == 0) {
      // Constant node: a single output-value token per row.
      if (tok.size() != 1) lex.fail("constant .names row must be one token");
      plane.clear();
      if (tok[0].size() != 1) lex.fail("bad cover output '" + tok[0] + "'");
      out_val = tok[0][0];
    } else {
      if (tok.size() != 2)
        lex.fail("cover row must be '<input-plane> <output>' (got " +
                 std::to_string(tok.size()) + " tokens)");
      plane = tok[0];
      if (tok[1].size() != 1) lex.fail("bad cover output '" + tok[1] + "'");
      out_val = tok[1][0];
    }
    if (plane.size() != k)
      lex.fail("cover row plane '" + plane + "' has " +
               std::to_string(plane.size()) + " columns but .names lists " +
               std::to_string(k) + " inputs (truncated cover?)");
    for (const char c : plane)
      if (c != '0' && c != '1' && c != '-')
        lex.fail(std::string("bad cover character '") + c +
                 "' (expected 0, 1 or -)");
    if (out_val != '0' && out_val != '1')
      lex.fail(std::string("bad cover output '") + out_val +
               "' (expected 0 or 1)");
    if (!names->cover.rows.empty() && names->cover.output_value != out_val)
      lex.fail("mixed on-set and off-set rows in one .names cover");
    names->cover.output_value = out_val;
    names->cover.rows.push_back(std::move(plane));
    if (names->cover.rows.size() > kMaxElements)
      lex.fail("too many cover rows");
    g_cover_rows.add();
  }

  void add_latch(const std::vector<std::string>& tok) {
    require_model(".latch");
    close_names();
    // Forms: .latch in out [init]   |   .latch in out type ctrl [init]
    if (tok.size() < 3 || tok.size() > 6)
      lex.fail(".latch expects <input> <output> [<type> <control>] [<init>]");
    LatchNode latch;
    check_name(tok[1], ".latch input");
    check_name(tok[2], ".latch output");
    latch.input = tok[1];
    latch.output = tok[2];
    latch.loc = {lex.source(), lex.line()};
    std::size_t init_idx = 3;
    if (tok.size() >= 5) {
      const std::string& type = tok[3];
      if (type != "re" && type != "fe" && type != "ah" && type != "al" &&
          type != "as")
        lex.fail("unknown latch type '" + type + "'");
      if (tok[4] != "NIL") {
        check_name(tok[4], ".latch control");
        latch.control = tok[4];
      }
      init_idx = 5;
    } else if (tok.size() == 4) {
      init_idx = 3;
    }
    if (tok.size() > init_idx) {
      const std::string& init = tok[init_idx];
      if (init.size() != 1 || init[0] < '0' || init[0] > '3')
        lex.fail("bad latch init value '" + init + "' (expected 0..3)");
      latch.init = init[0] - '0';
    }
    model->latches.push_back(std::move(latch));
    if (model->latches.size() > kMaxElements) lex.fail("too many latches");
    g_latches.add();
  }

  void add_subckt(const std::vector<std::string>& tok) {
    require_model(".subckt");
    close_names();
    if (tok.size() < 2) lex.fail(".subckt needs a model name");
    InstanceNode inst;
    check_name(tok[1], ".subckt model name");
    inst.model = tok[1];
    inst.name = "s" + std::to_string(subckt_count++);
    inst.loc = {lex.source(), lex.line()};
    for (std::size_t i = 2; i < tok.size(); ++i) {
      const std::size_t eq = tok[i].find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= tok[i].size())
        lex.fail(".subckt connection '" + tok[i] +
                 "' is not of the form formal=actual");
      std::string formal = tok[i].substr(0, eq);
      std::string actual = tok[i].substr(eq + 1);
      check_name(formal, ".subckt formal");
      check_name(actual, ".subckt actual");
      inst.conns.emplace_back(std::move(formal), std::move(actual));
    }
    model->instances.push_back(std::move(inst));
    if (model->instances.size() > kMaxElements) lex.fail("too many .subckt");
    g_subckts.add();
  }

  void run() {
    std::vector<std::string> tok;
    while (lex.next_line(tok)) {
      const std::string& head = tok[0];
      if (head[0] != '.') {
        add_cover_row(tok);
        continue;
      }
      if (head == ".model") {
        begin_model(tok);
      } else if (head == ".inputs") {
        require_model(".inputs");
        add_ports(tok, &model->inputs, "input name");
      } else if (head == ".outputs") {
        require_model(".outputs");
        add_ports(tok, &model->outputs, "output name");
      } else if (head == ".clock") {
        require_model(".clock");
        add_ports(tok, &model->clocks, "clock name");
      } else if (head == ".names") {
        close_names();
        begin_names(tok);
      } else if (head == ".latch") {
        add_latch(tok);
      } else if (head == ".subckt") {
        add_subckt(tok);
      } else if (head == ".end") {
        require_model(".end");
        close_names();
        model = nullptr;
      } else if (head == ".exdc" || head == ".gate" || head == ".mlatch" ||
                 head == ".search") {
        lex.fail("unsupported BLIF directive '" + head + "'");
      } else {
        lex.fail("unknown BLIF directive '" + head + "'");
      }
    }
    if (out.models.empty())
      parse_fail(lex.source(), lex.line() == 0 ? 1 : lex.line(),
                 "no .model in BLIF input");
  }
};

}  // namespace

IrNetlist parse_blif(std::istream& is, std::string source) {
  obs::Span span("frontend.parse_blif");
  fault::inject("frontend.parse");
  Parser p(is, std::move(source));
  p.run();
  return std::move(p.out);
}

}  // namespace tmm::frontend
