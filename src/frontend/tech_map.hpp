#pragma once
// Deterministic tech mapper (docs/FRONTEND.md): lower a lint-clean
// FlatNetlist onto a generated NLDM library, producing a tmm::Design.
//
// `.names` SOP nodes map to on-demand K-input cells synthesized into
// the (mutable, registry-owned) library via ensure_names_cell —
// byte-identical for the same canonical cover and library seed.
// Latches map to the library's DFF_X1 with setup/hold arcs; instances
// of library cells map 1:1. Construction order is canonical (ports,
// then primitives in flattened order, nets in driver order, sinks in
// pin order), so importing the same file twice writes byte-identical
// .dsn output.

#include <cstdint>
#include <string>

#include "frontend/ir.hpp"
#include "liberty/library_gen.hpp"
#include "netlist/design.hpp"

namespace tmm::frontend {

/// Import knobs shared by `tmm import`, `tmm lint` and the flow runner.
struct FrontendConfig {
  /// Library generator seed the imported design is mapped against.
  std::uint64_t lib_seed = 42;
  /// Top model override (empty = auto-select, see elaborate()).
  std::string top;
  /// Clock net override. Empty = infer: the unique latch/FF control
  /// net, or a synthesized "clk" input when every latch is unclocked.
  std::string clock;
  /// Output design name override (empty = top model name).
  std::string design_name;
  // Net parasitics are synthesized from fanout with fixed coefficients
  // so re-imports are bit-stable (the frontend has no placement data).
  double wire_cap_ff = 2.0;          ///< base lumped wire cap per net
  double wire_cap_fanout_ff = 0.35;  ///< extra wire cap per sink
  double wire_res_kohm = 0.18;       ///< driver->sink Elmore resistance
};

/// What an import did — surfaced by `tmm import` and the obs counters.
struct ImportStats {
  std::size_t models = 0;       ///< models/modules in the source file
  std::size_t flat_prims = 0;   ///< flattened primitives mapped
  std::size_t latches = 0;      ///< latches mapped to DFF cells
  std::size_t cells_synthesized = 0;  ///< new NK* cells added to the lib
  std::size_t gates = 0;
  std::size_t nets = 0;
  std::size_t pins = 0;
  std::string clock;  ///< chosen clock net; empty = combinational
};

/// Map `flat` onto `lib` (mutated: NK* cells are added on demand).
/// `flat` must be lint-clean (lint_flat); connectivity violations that
/// slipped through raise fault::FlowError(kParse). The library must
/// outlive the returned Design.
Design map_netlist(const FlatNetlist& flat, Library& lib,
                   const FrontendConfig& cfg, ImportStats* stats = nullptr);

}  // namespace tmm::frontend
