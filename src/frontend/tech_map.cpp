#include "frontend/tech_map.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tmm::frontend {

namespace {

obs::Counter& g_mapped_designs = obs::counter("frontend.mapped_designs");
obs::Counter& g_mapped_gates = obs::counter("frontend.mapped_gates");
obs::Counter& g_synth_cells = obs::counter("frontend.synthesized_cells");

[[noreturn]] void map_fail(const std::string& where, const std::string& msg) {
  throw fault::FlowError(fault::ErrorCode::kParse, "frontend.map",
                         where + ": " + msg);
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Canonical cover: rows sorted and deduplicated, so logically identical
/// `.names` bodies written in different row orders map to one cell.
SopCover canonical_cover(const SopCover& cover) {
  SopCover c;
  c.output_value = cover.output_value;
  c.rows = cover.rows;
  std::sort(c.rows.begin(), c.rows.end());
  c.rows.erase(std::unique(c.rows.begin(), c.rows.end()), c.rows.end());
  return c;
}

std::uint64_t cover_hash(std::size_t num_inputs, const SopCover& canonical) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a("k=" + std::to_string(num_inputs), h);
  h = fnv1a(std::string("v=") + canonical.output_value, h);
  for (const std::string& row : canonical.rows) h = fnv1a("|" + row, h);
  return h;
}

/// Syntactic unateness of input `i`: the cover only constrains timing
/// through the arc sense, and column polarity is the classic sound
/// approximation — a column using both '0' and '1' is non-unate, a
/// don't-care-only column is treated as non-unate too (the input can
/// still matter through row selection in an off-set cover).
ArcSense column_sense(const SopCover& canonical, std::size_t i) {
  bool saw0 = false;
  bool saw1 = false;
  for (const std::string& row : canonical.rows) {
    if (row[i] == '0') saw0 = true;
    if (row[i] == '1') saw1 = true;
  }
  if (saw0 && saw1) return ArcSense::kNonUnate;
  if (!saw0 && !saw1) return ArcSense::kNonUnate;
  const bool pos_for_onset = saw1;
  const bool onset = canonical.output_value == '1';
  return (pos_for_onset == onset) ? ArcSense::kPositiveUnate
                                  : ArcSense::kNegativeUnate;
}

struct Mapper {
  const FlatNetlist& flat;
  Library& lib;
  const FrontendConfig& cfg;
  LibraryGenConfig gen_cfg;
  ImportStats stats;

  Mapper(const FlatNetlist& f, Library& l, const FrontendConfig& c)
      : flat(f), lib(l), cfg(c) {
    gen_cfg.seed = cfg.lib_seed;
  }

  /// Every net name the flat netlist mentions (for clock-name dedup).
  std::unordered_set<std::string> all_net_names() const {
    std::unordered_set<std::string> used(flat.inputs.begin(),
                                         flat.inputs.end());
    used.insert(flat.outputs.begin(), flat.outputs.end());
    used.insert(flat.clocks.begin(), flat.clocks.end());
    for (const FlatPrimitive& p : flat.prims) {
      used.insert(p.inputs.begin(), p.inputs.end());
      if (!p.output.empty()) used.insert(p.output);
      if (!p.control.empty()) used.insert(p.control);
      for (const std::string& n : p.port_nets)
        if (!n.empty()) used.insert(n);
    }
    return used;
  }

  /// Choose the clock net. Returns (net name, synthesized?) — empty
  /// name for a purely combinational design.
  std::pair<std::string, bool> choose_clock() const {
    // Distinct control nets: latch controls + nets on FF clock pins.
    std::set<std::string> controls;  // ordered -> deterministic messages
    bool sequential = false;
    for (const FlatPrimitive& p : flat.prims) {
      if (p.kind == FlatKind::kLatch) {
        sequential = true;
        if (!p.control.empty()) controls.insert(p.control);
      } else if (p.kind == FlatKind::kCell) {
        const Cell& cell = lib.cell(lib.cell_id(p.cell));
        for (std::size_t i = 0; i < cell.ports.size(); ++i)
          if (cell.ports[i].is_clock) {
            sequential = true;
            if (!p.port_nets[i].empty()) controls.insert(p.port_nets[i]);
          }
      }
    }
    for (const std::string& c : flat.clocks) controls.insert(c);

    const auto is_input = [this](const std::string& n) {
      return std::find(flat.inputs.begin(), flat.inputs.end(), n) !=
                 flat.inputs.end() ||
             std::find(flat.clocks.begin(), flat.clocks.end(), n) !=
                 flat.clocks.end();
    };

    if (!cfg.clock.empty()) {
      if (!is_input(cfg.clock))
        map_fail(flat.source,
                 "--clock '" + cfg.clock + "' is not a primary input");
      for (const std::string& c : controls)
        if (c != cfg.clock)
          map_fail(flat.source, "latch/FF control net '" + c +
                                    "' does not match --clock '" + cfg.clock +
                                    "'");
      return {cfg.clock, false};
    }
    if (!sequential && controls.empty()) return {std::string(), false};
    if (controls.size() > 1) {
      std::string list;
      for (const std::string& c : controls) list += " '" + c + "'";
      map_fail(flat.source,
               "multiple clock/control nets:" + list +
                   "; disambiguate with --clock");
    }
    if (controls.size() == 1) {
      const std::string& c = *controls.begin();
      if (!is_input(c))
        map_fail(flat.source, "clock/control net '" + c +
                                  "' is not a primary input (derived clocks "
                                  "are not supported)");
      return {c, false};
    }
    // Sequential with every latch unclocked (NIL): synthesize a clock
    // input. Pick a name no existing net uses.
    const std::unordered_set<std::string> used = all_net_names();
    std::string name = "clk";
    for (std::size_t i = 2; used.count(name) != 0; ++i)
      name = "tmm_clk" + (i > 2 ? std::to_string(i) : std::string());
    return {name, true};
  }

  CellId names_cell(const FlatPrimitive& prim) {
    const SopCover canonical = canonical_cover(prim.cover);
    NamesCellSpec spec;
    spec.num_inputs = prim.inputs.size();
    spec.cover_hash = cover_hash(spec.num_inputs, canonical);
    spec.senses.reserve(spec.num_inputs);
    for (std::size_t i = 0; i < spec.num_inputs; ++i)
      spec.senses.push_back(column_sense(canonical, i));
    const bool existed = lib.has_cell(names_cell_name(spec));
    const CellId id = ensure_names_cell(lib, spec, gen_cfg);
    if (!existed) {
      ++stats.cells_synthesized;
      g_synth_cells.add();
    }
    return id;
  }

  Design run() {
    const auto [clock_net, clock_synth] = choose_clock();
    stats.clock = clock_net;

    Design design(cfg.design_name.empty() ? flat.name : cfg.design_name,
                  &lib);

    // --- ports: inputs, declared clocks, synthesized clock, outputs --
    std::unordered_map<std::string, PinId> driver_of;  ///< net -> driver pin
    const auto add_input = [&](const std::string& name, bool is_clk) {
      const std::uint32_t idx = design.add_port(
          name, TopPortDir::kPrimaryInput, is_clk);
      if (!driver_of.emplace(name, design.port(idx).pin).second)
        map_fail(flat.source, "duplicate primary input '" + name + "'");
    };
    for (const std::string& in : flat.inputs)
      add_input(in, in == clock_net);
    for (const std::string& clk : flat.clocks) add_input(clk, true);
    if (clock_synth) add_input(clock_net, true);
    std::vector<std::uint32_t> po_ports;
    po_ports.reserve(flat.outputs.size());
    for (const std::string& out : flat.outputs)
      po_ports.push_back(design.add_port(out, TopPortDir::kPrimaryOutput));

    // --- gates in flattened-primitive order ---------------------------
    const CellId dff = lib.has_cell("DFF_X1") ? lib.cell_id("DFF_X1")
                                              : kInvalidId;
    struct SinkRef {
      std::string net;
      PinId pin;
    };
    std::vector<SinkRef> sinks;  ///< gate input pins in (gate, pin) order
    for (const FlatPrimitive& prim : flat.prims) {
      switch (prim.kind) {
        case FlatKind::kNames: {
          const CellId cid = names_cell(prim);
          const GateId gid = design.add_gate(prim.name, cid);
          const Gate& gate = design.gate(gid);
          for (std::size_t i = 0; i < prim.inputs.size(); ++i)
            sinks.push_back({prim.inputs[i], gate.pins[i]});
          // Port I<k> is the output Y (last port).
          if (!driver_of.emplace(prim.output, gate.pins.back()).second)
            map_fail(prim.loc.str(),
                     "net '" + prim.output + "' has multiple drivers");
          break;
        }
        case FlatKind::kLatch: {
          if (dff == kInvalidId)
            map_fail(prim.loc.str(),
                     "library '" + lib.name() + "' has no DFF_X1 cell");
          ++stats.latches;
          const GateId gid = design.add_gate(prim.name, dff);
          const Gate& gate = design.gate(gid);
          const Cell& cell = lib.cell(dff);
          const std::string& ck =
              prim.control.empty() ? clock_net : prim.control;
          for (std::size_t i = 0; i < cell.ports.size(); ++i) {
            const CellPort& port = cell.ports[i];
            if (port.dir == PortDir::kOutput) {
              if (!driver_of.emplace(prim.output, gate.pins[i]).second)
                map_fail(prim.loc.str(),
                         "net '" + prim.output + "' has multiple drivers");
            } else if (port.is_clock) {
              sinks.push_back({ck, gate.pins[i]});
            } else {
              sinks.push_back({prim.inputs.at(0), gate.pins[i]});
            }
          }
          break;
        }
        case FlatKind::kCell: {
          const CellId cid = lib.cell_id(prim.cell);
          const GateId gid = design.add_gate(prim.name, cid);
          const Gate& gate = design.gate(gid);
          const Cell& cell = lib.cell(cid);
          for (std::size_t i = 0; i < cell.ports.size(); ++i) {
            const std::string& net = prim.port_nets[i];
            if (net.empty()) continue;  // lint-tolerated dangling output
            if (cell.ports[i].dir == PortDir::kInput) {
              sinks.push_back({net, gate.pins[i]});
            } else if (!driver_of.emplace(net, gate.pins[i]).second) {
              map_fail(prim.loc.str(),
                       "net '" + net + "' has multiple drivers");
            }
          }
          break;
        }
      }
      g_mapped_gates.add();
    }

    // --- nets in driver order, sinks in (gate, pin) then PO order ----
    // Driver order = PI ports then gate output pins, which is exactly
    // the order driver_of was populated in; replay it via pin id sort
    // (pin ids are assigned in creation order, so this is canonical).
    std::vector<std::pair<PinId, const std::string*>> drivers;
    drivers.reserve(driver_of.size());
    for (const auto& [net, pin] : driver_of) drivers.push_back({pin, &net});
    std::sort(drivers.begin(), drivers.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    std::unordered_map<std::string, NetId> net_of;
    for (const auto& [pin, net_name] : drivers)
      net_of.emplace(*net_name, design.add_net(*net_name, pin));

    std::unordered_map<std::string, std::size_t> fanout;
    const auto net_for = [&](const std::string& name,
                             const std::string& where) {
      const auto it = net_of.find(name);
      if (it == net_of.end())
        map_fail(where, "net '" + name + "' has no driver");
      return it->second;
    };
    for (const SinkRef& s : sinks) {
      design.connect_sink(net_for(s.net, flat.source), s.pin,
                          cfg.wire_res_kohm);
      ++fanout[s.net];
    }
    for (std::size_t i = 0; i < flat.outputs.size(); ++i) {
      design.connect_sink(net_for(flat.outputs[i], flat.source),
                          design.port(po_ports[i]).pin, cfg.wire_res_kohm);
      ++fanout[flat.outputs[i]];
    }
    for (const auto& [name, nid] : net_of)
      design.set_wire_cap(nid, cfg.wire_cap_ff +
                                   cfg.wire_cap_fanout_ff *
                                       static_cast<double>(fanout[name]));

    stats.flat_prims = flat.prims.size();
    stats.gates = design.num_gates();
    stats.nets = design.num_nets();
    stats.pins = design.num_pins();
    g_mapped_designs.add();
    return design;
  }
};

}  // namespace

Design map_netlist(const FlatNetlist& flat, Library& lib,
                   const FrontendConfig& cfg, ImportStats* stats) {
  obs::Span span("frontend.map");
  fault::inject("frontend.map");
  Mapper mapper(flat, lib, cfg);
  Design design = mapper.run();
  design.validate();
  if (stats != nullptr) {
    mapper.stats.models = 0;  // filled by import_file (parser-level info)
    *stats = mapper.stats;
  }
  return design;
}

}  // namespace tmm::frontend
