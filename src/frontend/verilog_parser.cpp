#include "frontend/verilog_parser.hpp"

#include <cctype>
#include <unordered_set>

#include "frontend/lexer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tmm::frontend {

namespace {

obs::Counter& g_modules = obs::counter("frontend.verilog_modules");
obs::Counter& g_instances = obs::counter("frontend.verilog_instances");

constexpr std::size_t kMaxElements = 100'000'000;

bool is_keyword(const std::string& t) {
  return t == "module" || t == "endmodule" || t == "input" || t == "output" ||
         t == "inout" || t == "wire" || t == "assign" || t == "reg" ||
         t == "always" || t == "initial" || t == "parameter";
}

struct Parser {
  VerilogLexer lex;
  IrNetlist out;
  std::unordered_set<std::string> model_names;

  // Per-module state.
  IrModel* model = nullptr;
  std::unordered_set<std::string> declared;  ///< inputs+outputs+wires
  std::unordered_set<std::string> port_set;  ///< header port names

  explicit Parser(std::istream& is, std::string source)
      : lex(is, std::move(source)) {
    out.source = lex.source();
  }

  void check_net(const std::string& name) {
    if (declared.find(name) == declared.end())
      lex.fail("undeclared signal '" + name + "'");
  }

  void reject_vector() {
    if (lex.peek() == "[")
      lex.fail("vector ranges are not supported (scalar nets only)");
  }

  /// `input`/`output`/`wire` direction keyword -> destination list, or
  /// nullptr for `wire` (declared but not a port).
  std::vector<std::string>* dir_list(const std::string& kw) {
    if (kw == "input") return &model->inputs;
    if (kw == "output") return &model->outputs;
    return nullptr;  // wire
  }

  void declare(const std::string& name, std::vector<std::string>* dst,
               bool from_header) {
    if (!valid_identifier(name)) lex.fail("invalid net name '" + name + "'");
    if (!declared.insert(name).second)
      lex.fail("duplicate declaration of '" + name + "'");
    if (dst != nullptr) {
      // Non-ANSI port declarations must match the header port list.
      if (!from_header && port_set.find(name) == port_set.end())
        lex.fail("'" + name + "' declared as a port but not listed in the "
                 "module header");
      dst->push_back(name);
      if (dst->size() > kMaxElements) lex.fail("too many ports");
    }
  }

  /// Parse the header port list. ANSI form carries directions inline;
  /// non-ANSI lists bare names whose directions come from body
  /// declarations.
  void parse_header_ports() {
    if (lex.peek() != "(") return;
    lex.expect("(");
    if (lex.peek() == ")") {
      lex.expect(")");
      return;
    }
    std::vector<std::string>* dir = nullptr;  // sticky across commas (ANSI)
    for (;;) {
      const std::string& t = lex.peek();
      if (t == "input" || t == "output") {
        const std::string kw = lex.next();
        reject_vector();
        if (lex.peek() == "wire") lex.next();  // `input wire a` (ANSI)
        dir = dir_list(kw);
      } else if (t == "inout") {
        lex.fail("inout ports are not supported");
      } else if (t == "wire") {
        lex.fail("'wire' is not a port direction");
      }
      const std::string name = lex.ident("port name");
      if (is_keyword(name)) lex.fail("unexpected keyword '" + name + "'");
      if (!port_set.insert(name).second)
        lex.fail("duplicate port '" + name + "' in module header");
      model->port_order.push_back(name);
      if (model->port_order.size() > kMaxElements) lex.fail("too many ports");
      if (dir != nullptr) declare(name, dir, /*from_header=*/true);
      const std::string sep = lex.next();
      if (sep == ")") break;
      if (sep != ",") lex.fail("expected ',' or ')' in port list, got '" +
                               sep + "'");
    }
  }

  /// Body `input a, b;` / `output y;` / `wire w;` declaration.
  void parse_decl(const std::string& kw) {
    reject_vector();
    std::vector<std::string>* dst = dir_list(kw);
    for (;;) {
      declare(lex.ident("net name"), dst, /*from_header=*/false);
      const std::string sep = lex.next();
      if (sep == ";") break;
      if (sep != ",") lex.fail("expected ',' or ';' in declaration, got '" +
                               sep + "'");
    }
  }

  /// `<model> <inst> ( ... );` — named or positional connections (not
  /// mixed). Every actual must be a declared scalar net.
  void parse_instance(const std::string& model_name) {
    InstanceNode inst;
    inst.model = model_name;
    inst.loc = {lex.source(), lex.line()};
    inst.name = lex.ident("instance name");
    if (is_keyword(inst.name))
      lex.fail("unexpected keyword '" + inst.name + "'");
    lex.expect("(");
    bool named = false;
    bool positional = false;
    if (lex.peek() != ")") {
      for (;;) {
        std::string formal;
        std::string actual;
        if (lex.peek() == ".") {
          lex.expect(".");
          named = true;
          formal = lex.ident("port name");
          lex.expect("(");
          if (lex.peek() != ")") {
            actual = lex.ident("net name");
            check_net(actual);
          }
          lex.expect(")");
        } else {
          positional = true;
          actual = lex.ident("net name");
          check_net(actual);
        }
        if (named && positional)
          lex.fail("mixed named and positional connections on instance '" +
                   inst.name + "'");
        inst.conns.emplace_back(std::move(formal), std::move(actual));
        if (inst.conns.size() > kMaxElements)
          lex.fail("too many connections");
        const std::string sep = lex.next();
        if (sep == ")") break;
        if (sep != ",")
          lex.fail("expected ',' or ')' in connection list, got '" + sep +
                   "'");
      }
    } else {
      lex.expect(")");
    }
    lex.expect(";");
    model->instances.push_back(std::move(inst));
    if (model->instances.size() > kMaxElements) lex.fail("too many instances");
    g_instances.add();
  }

  void parse_module() {
    out.models.emplace_back();
    model = &out.models.back();
    declared.clear();
    port_set.clear();
    model->loc = {lex.source(), lex.line()};
    model->name = lex.ident("module name");
    if (is_keyword(model->name))
      lex.fail("unexpected keyword '" + model->name + "'");
    if (!model_names.insert(model->name).second)
      lex.fail("duplicate module '" + model->name + "'");
    g_modules.add();
    parse_header_ports();
    lex.expect(";");
    for (;;) {
      const std::string t = lex.next();
      if (t.empty()) lex.fail("unexpected end of input (missing endmodule?)");
      if (t == "endmodule") break;
      if (t == "input" || t == "output" || t == "wire") {
        parse_decl(t);
      } else if (t == "inout") {
        lex.fail("inout ports are not supported");
      } else if (t == "assign" || t == "always" || t == "initial" ||
                 t == "reg" || t == "parameter") {
        lex.fail("behavioural construct '" + t +
                 "' is not supported (structural netlists only)");
      } else {
        const unsigned char c0 = static_cast<unsigned char>(t[0]);
        if (std::isdigit(c0) != 0 || is_keyword(t) || t.size() == 1)
          lex.fail("unexpected token '" + t + "'");
        parse_instance(t);
      }
    }
    // Every header port must have received a direction.
    for (const std::string& p : model->port_order)
      if (declared.find(p) == declared.end())
        lex.fail("port '" + p + "' has no input/output declaration");
    model = nullptr;
  }

  void run() {
    for (;;) {
      const std::string t = lex.next();
      if (t.empty()) break;
      if (t != "module")
        lex.fail("expected 'module', got '" + t + "'");
      parse_module();
    }
    if (out.models.empty())
      parse_fail(lex.source(), 1, "no module in Verilog input");
  }
};

}  // namespace

IrNetlist parse_verilog(std::istream& is, std::string source) {
  obs::Span span("frontend.parse_verilog");
  fault::inject("frontend.parse");
  Parser p(is, std::move(source));
  p.run();
  return std::move(p.out);
}

}  // namespace tmm::frontend
