#include "frontend/frontend_lint.hpp"

#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace tmm::frontend {

namespace {

struct NetInfo {
  std::size_t drivers = 0;
  std::size_t users = 0;
  std::string first_driver;  ///< for the F002 message
  std::string second_driver;
};

/// First-seen-ordered net table: map for lookup, vector for stable
/// report order (findings must be deterministic across runs).
struct NetTable {
  std::unordered_map<std::string, std::size_t> index;
  std::vector<std::string> names;
  std::vector<NetInfo> info;

  NetInfo& at(const std::string& net) {
    const auto [it, inserted] = index.emplace(net, names.size());
    if (inserted) {
      names.push_back(net);
      info.emplace_back();
    }
    return info[it->second];
  }
};

}  // namespace

analysis::LintReport lint_flat(const FlatNetlist& flat,
                               const Library& lib) {
  obs::Span span("frontend.lint_flat");
  analysis::LintReport report;
  NetTable nets;

  auto drive = [&nets](const std::string& net, const std::string& who) {
    NetInfo& n = nets.at(net);
    if (n.drivers == 0)
      n.first_driver = who;
    else if (n.drivers == 1)
      n.second_driver = who;
    ++n.drivers;
  };
  auto use = [&nets](const std::string& net) { ++nets.at(net).users; };

  for (const std::string& pi : flat.inputs) drive(pi, "primary input");
  for (const std::string& clk : flat.clocks) drive(clk, "clock input");

  for (const FlatPrimitive& prim : flat.prims) {
    switch (prim.kind) {
      case FlatKind::kNames:
        for (const std::string& in : prim.inputs) use(in);
        drive(prim.output, prim.name);
        break;
      case FlatKind::kLatch:
        for (const std::string& in : prim.inputs) use(in);
        if (!prim.control.empty()) use(prim.control);
        drive(prim.output, prim.name);
        break;
      case FlatKind::kCell: {
        const Cell& cell = lib.cell(lib.cell_id(prim.cell));
        for (std::size_t i = 0; i < cell.ports.size(); ++i) {
          const std::string& net = prim.port_nets[i];
          if (cell.ports[i].dir == PortDir::kInput) {
            if (net.empty()) {
              report.add(analysis::rule::kIrDanglingPin,
                         analysis::Severity::kError,
                         prim.loc.str() + " instance " + prim.name,
                         "input pin '" + cell.ports[i].name + "' of cell '" +
                             cell.name + "' is unconnected",
                         "connect the pin or remove the instance");
            } else {
              use(net);
            }
          } else if (!net.empty()) {
            drive(net, prim.name);
          }
        }
        break;
      }
    }
  }
  for (const std::string& po : flat.outputs) use(po);

  for (std::size_t i = 0; i < nets.names.size(); ++i) {
    const NetInfo& n = nets.info[i];
    const std::string& name = nets.names[i];
    if (n.drivers == 0) {
      report.add(analysis::rule::kIrUndrivenNet, analysis::Severity::kError,
                 "net " + name,
                 "net is consumed but has no driver (no primary input, no "
                 "gate output)",
                 "declare the net as an input or add a driving gate");
    } else if (n.drivers > 1) {
      report.add(analysis::rule::kIrMultiDriven, analysis::Severity::kError,
                 "net " + name,
                 "net has " + std::to_string(n.drivers) + " drivers (" +
                     n.first_driver + ", " + n.second_driver +
                     (n.drivers > 2 ? ", ..." : "") + ")",
                 "a net must have exactly one driver");
    }
    if (n.users == 0) {
      report.add(analysis::rule::kIrUnusedNet, analysis::Severity::kWarning,
                 "net " + name, "net is driven but consumed by nothing",
                 "remove the dead logic or add a primary output");
    }
  }
  return report;
}

}  // namespace tmm::frontend
